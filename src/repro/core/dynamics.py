"""Transient population dynamics — how fast the steady state is reached.

The paper defines the expected distribution as a *fixed point* of the
insertion process but says nothing about the transient: a freshly
seeded tree starts far from ``e`` and converges as points arrive.  This
module models that process two ways and quantifies the convergence
rate, which tells an engineer how many insertions a structure needs
before the steady-state predictions (occupancy, node counts) apply.

**Mean-field evolution.**  Let ``N`` be the vector of node *counts* by
occupancy.  One insertion hits class ``i`` with probability
``N_i / sum(N)`` and replaces that node with transform row ``t_i``, so
the expected update is

    N' = N + e (T - I),     e = N / sum(N).

Normalizing, the proportion vector evolves by the same power-iteration
map whose fixed point is the Perron vector — so the *rate* of
convergence per node-generation is the eigenvalue ratio
``|lambda_2| / lambda_1`` of **T**.

**Stochastic simulation.**  The same process with sampling instead of
expectation: a categorical draw picks the node class, integer counts
update by a sampled realization of the transform row.  This simulates
the paper's experiments *without building any tree* — a population-level
Monte Carlo that runs thousands of times faster and converges to the
same censuses, which is itself a validation of the population
abstraction.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from .fixed_point import solve_fixed_point_iteration
from .transform import split_distribution, transform_matrix


class PopulationDynamics:
    """Mean-field dynamics of a node population under insertion.

    Parameters
    ----------
    matrix:
        A transform matrix (rows = node types), e.g. from
        :func:`repro.core.transform.transform_matrix`.
    """

    def __init__(self, matrix: np.ndarray):
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError(f"matrix must be square, got {matrix.shape}")
        if (matrix < 0).any():
            raise ValueError("matrix entries must be nonnegative")
        self._matrix = matrix
        self._n = matrix.shape[0]

    @property
    def matrix(self) -> np.ndarray:
        """A copy of the transform matrix."""
        return self._matrix.copy()

    def step(self, counts: Sequence[float]) -> np.ndarray:
        """One expected insertion: ``N' = N + e (T - I)``."""
        N = np.asarray(counts, dtype=float)
        if N.shape != (self._n,):
            raise ValueError(f"counts must have shape ({self._n},)")
        total = N.sum()
        if total <= 0:
            raise ValueError("population is empty")
        e = N / total
        return N + e @ self._matrix - e

    def trajectory(
        self, initial: Sequence[float], insertions: int
    ) -> np.ndarray:
        """Proportion vectors after 0..insertions expected insertions.

        Returns an ``(insertions + 1, n)`` array of proportion vectors;
        row 0 is the normalized initial state.
        """
        if insertions < 0:
            raise ValueError(f"insertions must be >= 0, got {insertions}")
        N = np.asarray(initial, dtype=float)
        out = np.empty((insertions + 1, self._n))
        out[0] = N / N.sum()
        for k in range(1, insertions + 1):
            N = self.step(N)
            out[k] = N / N.sum()
        return out

    def convergence_rate(self) -> float:
        """The per-generation contraction factor ``|lambda_2|/lambda_1``.

        Distance to the steady state shrinks by about this factor each
        time the node population turns over once (one 'generation');
        smaller is faster.  For the PR quadtree this is ~0.33 at m=1
        and grows toward 1 with m (bigger buckets equilibrate slower in
        generations, though a generation also spans more insertions).
        """
        values = np.linalg.eigvals(self._matrix)
        magnitudes = np.sort(np.abs(values))[::-1]
        lead = magnitudes[0]
        if lead <= 0:
            raise ArithmeticError("transform matrix has no growth")
        if len(magnitudes) < 2:
            return 0.0
        return float(magnitudes[1] / lead)

    def distance_to_steady_state(self, counts: Sequence[float]) -> float:
        """Total-variation distance from ``counts`` to the fixed point."""
        N = np.asarray(counts, dtype=float)
        e = N / N.sum()
        steady = solve_fixed_point_iteration(self._matrix).distribution
        return float(0.5 * np.abs(e - steady).sum())

    def insertions_to_tolerance(
        self, initial: Sequence[float], tol: float = 0.01,
        max_insertions: int = 1_000_000,
    ) -> int:
        """Expected insertions until the proportion vector is within
        total-variation ``tol`` of the steady state."""
        if tol <= 0:
            raise ValueError("tol must be positive")
        N = np.asarray(initial, dtype=float)
        steady = solve_fixed_point_iteration(self._matrix).distribution
        for k in range(max_insertions + 1):
            e = N / N.sum()
            if 0.5 * np.abs(e - steady).sum() <= tol:
                return k
            N = self.step(N)
        raise ArithmeticError(
            f"did not reach tol={tol} within {max_insertions} insertions"
        )


class StochasticPopulation:
    """Monte Carlo simulation of the node population itself.

    Simulates the paper's PR-tree experiments at the population level:
    integer node counts, categorical choice of the hit class, sampled
    split outcomes.  No geometry, no tree — if the population
    abstraction is sound, the resulting censuses match tree-built ones,
    and they do (see tests).

    Parameters
    ----------
    capacity:
        Node capacity m.
    buckets:
        Split fanout b (4 for the planar quadtree).
    seed:
        RNG seed.
    """

    def __init__(
        self, capacity: int, buckets: int = 4, seed: Optional[int] = None
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if buckets < 2:
            raise ValueError(f"buckets must be >= 2, got {buckets}")
        self._capacity = capacity
        self._buckets = buckets
        self._rng = np.random.default_rng(seed)
        self._counts = np.zeros(capacity + 1, dtype=np.int64)
        self._counts[0] = 1  # one empty root
        self._items = 0

    @property
    def capacity(self) -> int:
        """Node capacity m."""
        return self._capacity

    @property
    def counts(self) -> np.ndarray:
        """Current node counts by occupancy (copy)."""
        return self._counts.copy()

    @property
    def total_nodes(self) -> int:
        """Current number of leaf nodes."""
        return int(self._counts.sum())

    @property
    def total_items(self) -> int:
        """Number of inserted items."""
        return self._items

    def proportions(self) -> np.ndarray:
        """Current occupancy proportions."""
        return self._counts / self._counts.sum()

    def average_occupancy(self) -> float:
        """Items per node, computed from the census.

        (Equals ``total_items / total_nodes`` exactly: the simulation
        conserves items by construction.)
        """
        weights = np.arange(self._capacity + 1)
        return float(self._counts @ weights / self._counts.sum())

    def insert(self) -> None:
        """One insertion: pick a node class by abundance, transform it."""
        total = self._counts.sum()
        hit = int(
            self._rng.choice(self._capacity + 1, p=self._counts / total)
        )
        self._counts[hit] -= 1
        self._items += 1
        if hit < self._capacity:
            self._counts[hit + 1] += 1
            return
        # Full node: scatter m+1 items into b quadrants, recursing on a
        # quadrant that received all of them (the paper's t_m process).
        pending = [self._capacity + 1]
        while pending:
            q = pending.pop()
            assignment = self._rng.multinomial(
                q, [1.0 / self._buckets] * self._buckets
            )
            for child_items in assignment:
                if child_items == q and q > self._capacity:
                    pending.append(int(child_items))
                elif child_items > self._capacity:
                    pending.append(int(child_items))  # pragma: no cover
                else:
                    self._counts[child_items] += 1

    def insert_many(self, n: int) -> None:
        """Run ``n`` insertions."""
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        for _ in range(n):
            self.insert()

    def validate(self) -> None:
        """Invariant: census-weighted items equal insertions."""
        weights = np.arange(self._capacity + 1)
        assert int(self._counts @ weights) == self._items, (
            "population lost or duplicated items"
        )
        assert (self._counts >= 0).all()


def generation_span(capacity: int, buckets: int = 4) -> float:
    """Expected insertions per node-generation at steady state.

    One 'generation' is one full turnover of the node population; with
    growth factor ``a`` each insertion multiplies the node count by
    roughly ``1 + (a-1)/nodes``, so a generation spans about
    ``nodes * ln(b) / (a - 1)`` insertions.  Returned per current node,
    i.e. insertions-per-node for one turnover: ``ln(b)/(a-1)``.
    """
    state = solve_fixed_point_iteration(transform_matrix(capacity, buckets))
    return math.log(buckets) / (state.growth - 1.0)


def split_outcome_probabilities(
    capacity: int, buckets: int = 4
) -> List[float]:
    """Convenience re-export of the split distribution as floats
    (normalized per quadrant) for Monte Carlo callers."""
    dist = split_distribution(capacity, buckets)
    return [float(x) / buckets for x in dist]
