"""Aging — why the model slightly over-predicts occupancy (Section IV).

The population model assumes a point is equally likely to land in any
node, i.e. that node *area* is independent of occupancy.  In a real
tree larger nodes have aged longer and absorbed more points, so they
run above-average occupancy; conversely high-occupancy nodes are
bigger targets, so the steady state holds *fewer* of them than the
uncorrected model predicts, and the model's average occupancy is
uniformly high (Table 2's positive percent differences).

This module provides:

- :func:`depth_occupancy_table` — the Table 3 probe: per-depth node
  counts and average occupancy from simulated trees;
- :func:`aging_gradient` — a scalar summary (occupancy slope per
  depth) that is negative when aging is present;
- :class:`AreaWeightedModel` — the paper's qualitative correction made
  quantitative: re-solve the fixed point with insertion probability
  proportional to ``e_i * w_i`` where ``w_i`` is the relative mean
  block area of occupancy class ``i``, measured from simulation.  The
  corrected distribution shifts mass toward low occupancies and lowers
  the predicted mean, in the direction of the experimental data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..quadtree.census import DepthCensus
from .fixed_point import SteadyState
from .transform import transform_matrix


@dataclass(frozen=True)
class DepthRow:
    """One row of the Table 3 layout."""

    depth: int
    counts: Tuple[float, ...]  # mean node count per occupancy class
    occupancy: float  # mean occupancy at this depth

    @property
    def nodes(self) -> float:
        """Mean total nodes at this depth."""
        return float(sum(self.counts))


def depth_occupancy_table(censuses: Sequence[DepthCensus]) -> List[DepthRow]:
    """Average several per-depth censuses into Table 3 rows.

    Each census comes from one simulated tree; rows are produced for
    every depth present in any census, averaged over all trees (a tree
    without leaves at a depth contributes zero counts, matching the
    paper's averaging over 10 trees).
    """
    if not censuses:
        raise ValueError("need at least one census")
    capacity = censuses[0].capacity
    if any(c.capacity != capacity for c in censuses):
        raise ValueError("censuses disagree on capacity")
    depths = sorted({d for c in censuses for d in c.depths()})
    rows: List[DepthRow] = []
    for depth in depths:
        sums = np.zeros(capacity + 1)
        for c in censuses:
            sums += np.asarray(c.counts_at(depth), dtype=float)
        means = sums / len(censuses)
        nodes = means.sum()
        occupancy = float(means @ np.arange(capacity + 1) / nodes)
        rows.append(DepthRow(depth, tuple(means), occupancy))
    return rows


def aging_gradient(rows: Sequence[DepthRow], min_nodes: float = 5.0) -> float:
    """Least-squares slope of occupancy against depth.

    Rows with fewer than ``min_nodes`` average nodes are excluded (the
    paper notes the sparse deepest/shallowest levels are noisy).  A
    negative slope is the aging signature: occupancy falls as blocks
    get smaller.
    """
    usable = [r for r in rows if r.nodes >= min_nodes]
    if len(usable) < 2:
        raise ValueError("need at least two well-populated depths")
    x = np.array([r.depth for r in usable], dtype=float)
    y = np.array([r.occupancy for r in usable])
    slope = np.polyfit(x, y, 1)[0]
    return float(slope)


def mean_area_by_occupancy(
    leaves: Sequence[Tuple[float, int]], capacity: int
) -> np.ndarray:
    """Mean block area per occupancy class from ``(area, occupancy)``
    pairs, normalized so the overall mean is 1.

    Classes never observed get weight 1 (no evidence of bias).
    """
    sums = np.zeros(capacity + 1)
    counts = np.zeros(capacity + 1)
    for area, occ in leaves:
        if not 0 <= occ <= capacity:
            raise ValueError(f"occupancy {occ} outside 0..{capacity}")
        sums[occ] += area
        counts[occ] += 1
    total_area = sums.sum()
    total_count = counts.sum()
    if total_count == 0 or total_area <= 0:
        raise ValueError("no leaves supplied")
    overall_mean = total_area / total_count
    weights = np.ones(capacity + 1)
    mask = counts > 0
    weights[mask] = (sums[mask] / counts[mask]) / overall_mean
    return weights


class AreaWeightedModel:
    """Aging-corrected population model.

    The uncorrected model's steady-state condition weights each node
    type's transformation rate by its proportion ``e_i``.  Aging means
    the true rate is proportional to the *area share* ``e_i w_i``
    (``w_i`` = relative mean block area of class i).  The corrected
    fixed point solves

        normalize(diag(w) T applied to e) = e

    i.e. it is the Perron left eigenvector of ``W T`` re-expressed as
    node proportions.  With ``w`` increasing in occupancy this shifts
    the distribution toward empty nodes and lowers the mean — the
    direction of every discrepancy in Table 2.
    """

    def __init__(
        self,
        capacity: int,
        weights: Sequence[float],
        buckets: int = 4,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        w = np.asarray(weights, dtype=float)
        if w.shape != (capacity + 1,):
            raise ValueError(
                f"need {capacity + 1} weights, got {w.shape}"
            )
        if (w <= 0).any():
            raise ValueError("area weights must be positive")
        self._capacity = capacity
        self._weights = w
        self._matrix = transform_matrix(capacity, buckets)
        self._state: Optional[SteadyState] = None

    @property
    def weights(self) -> np.ndarray:
        """The relative area weights per occupancy class."""
        return self._weights.copy()

    def steady_state(
        self, tol: float = 1e-12, max_iter: int = 100_000
    ) -> SteadyState:
        """Solve the weighted fixed point by the paper-style iteration.

        One sweep: nodes are hit at rate proportional to ``e_i w_i``;
        the hit mass flows through **T**; the unhit mass stays put.  We
        iterate the *event* form — the distribution of newly produced
        nodes must equal ``e`` — which generalizes the unweighted
        ``e <- normalize(e T)`` sweep.
        """
        if self._state is not None:
            return self._state
        n = self._capacity + 1
        e = np.full(n, 1.0 / n)
        for iteration in range(1, max_iter + 1):
            hit = e * self._weights
            hit = hit / hit.sum()
            produced = hit @ self._matrix
            nxt = produced / produced.sum()
            if np.max(np.abs(nxt - e)) < tol:
                growth = float(hit @ self._matrix.sum(axis=1))
                self._state = SteadyState(nxt, growth, iteration)
                return self._state
            e = nxt
        raise ArithmeticError(
            f"weighted iteration did not converge in {max_iter} sweeps"
        )

    def expected_distribution(self) -> np.ndarray:
        """The aging-corrected expected distribution."""
        return self.steady_state().distribution.copy()

    def average_occupancy(self) -> float:
        """The aging-corrected mean occupancy."""
        return self.steady_state().average_occupancy()


def calibrated_area_model(
    capacity: int,
    leaves: Sequence[Tuple[float, int]],
    buckets: int = 4,
) -> AreaWeightedModel:
    """Build an :class:`AreaWeightedModel` with weights measured from
    simulated ``(area, occupancy)`` leaf data."""
    weights = mean_area_by_occupancy(leaves, capacity)
    return AreaWeightedModel(capacity, weights, buckets)
