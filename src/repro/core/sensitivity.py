"""Sensitivity of the steady state to model parameters.

The population model's inputs are estimated quantities — the PMR
crossing probability is measured from finite trees, area weights from
finite censuses — so predictions need error bars.  This module
differentiates the fixed point:

For ``e(T)`` the normalized left Perron vector, a perturbation ``dT``
moves the prediction by the classical eigenvector-perturbation formula;
we expose it as numerical directional derivatives (robust, exact to
O(h^2), no adjoint bookkeeping), plus convenience wrappers for the two
calibrated parameters users actually vary:

- :func:`occupancy_gradient_wrt_matrix` — d(average occupancy)/dT_ij;
- :func:`pmr_occupancy_sensitivity` — d(occupancy)/dp for the PMR
  model, with a finite-sample error-bar helper.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .fixed_point import solve_fixed_point_iteration
from .pmr_model import PMRPopulationModel


def _occupancy_of(matrix: np.ndarray) -> float:
    state = solve_fixed_point_iteration(matrix)
    return state.average_occupancy()


def directional_derivative(
    matrix: np.ndarray,
    direction: np.ndarray,
    functional: Callable[[np.ndarray], float] = _occupancy_of,
    step: float = 1e-6,
) -> float:
    """Central-difference derivative of ``functional`` along ``dT``.

    ``direction`` is a matrix of the same shape as ``matrix``; the
    derivative is of ``functional(matrix + t * direction)`` at t=0.
    """
    matrix = np.asarray(matrix, dtype=float)
    direction = np.asarray(direction, dtype=float)
    if direction.shape != matrix.shape:
        raise ValueError(
            f"direction shape {direction.shape} != matrix {matrix.shape}"
        )
    # keep the perturbed matrices nonnegative: shrink the step to stay
    # inside the feasible cone where entries would go negative
    up = matrix + step * direction
    down = matrix - step * direction
    if (up < 0).any() or (down < 0).any():
        raise ValueError(
            "step leaves the nonnegative cone; use a smaller step or a "
            "feasible direction"
        )
    return (functional(up) - functional(down)) / (2.0 * step)


def occupancy_gradient_wrt_matrix(
    matrix: np.ndarray, step: float = 1e-6
) -> np.ndarray:
    """The full gradient d(average occupancy)/dT_ij.

    Computed entrywise by central differences on the solved fixed
    point; zero entries of **T** are perturbed one-sidedly to stay
    nonnegative (forward difference there).
    """
    matrix = np.asarray(matrix, dtype=float)
    n = matrix.shape[0]
    base = _occupancy_of(matrix)
    grad = np.zeros_like(matrix)
    for i in range(n):
        for j in range(n):
            bump = np.zeros_like(matrix)
            bump[i, j] = 1.0
            if matrix[i, j] >= step:
                grad[i, j] = directional_derivative(matrix, bump, step=step)
            else:
                up = matrix + step * bump
                grad[i, j] = (_occupancy_of(up) - base) / step
    return grad


def pmr_occupancy_sensitivity(
    threshold: int, crossing_probability: float, step: float = 1e-5
) -> float:
    """d(predicted mean occupancy)/dp for the PMR model.

    Negative in the practical regime: a larger p spreads each segment
    over more children per split, producing more lightly-loaded leaves.
    """
    def occupancy(p: float) -> float:
        return PMRPopulationModel(threshold, p).average_occupancy()

    p = crossing_probability
    if not step < p < 1.0 - step:
        raise ValueError("crossing_probability too close to its bounds")
    return (occupancy(p + step) - occupancy(p - step)) / (2.0 * step)


def pmr_occupancy_error_bar(
    threshold: int,
    crossing_probability: float,
    probability_std: float,
) -> float:
    """First-order error bar on the PMR occupancy prediction.

    Propagates a standard deviation on the measured crossing
    probability through the model:  |d occ/dp| * std.
    """
    if probability_std < 0:
        raise ValueError("probability_std must be >= 0")
    slope = pmr_occupancy_sensitivity(threshold, crossing_probability)
    return abs(slope) * probability_std
