"""Uniqueness of the positive fixed point — the [Nels86b] claim.

The paper: "In general, such a set of equations can have up to 2^{m+1}
solution vectors, however ... It can be shown, that for sets of
equations of the above form, at most one positive solution is possible
(see [Nels86b]).  We are thus free to solve the equations numerically,
with the assurance that any positive solution we find will be
appropriate."

Once the distribution is normalized, every solution of the quadratic
system ``e T = a e, sum(e) = 1`` is a (left) eigenpair of **T**, so the
full solution set is *finite and enumerable*: one candidate per
eigenvalue.  Positivity of exactly one of them is Perron–Frobenius for
an irreducible nonnegative matrix.  This module makes all of that
executable:

- :func:`enumerate_fixed_points` — every normalized eigen-solution,
  with its eigenvalue and residual;
- :func:`is_irreducible` — graph check (strong connectivity of the
  nonzero pattern) establishing the Perron hypothesis;
- :func:`verify_unique_positive` — the paper's assurance as an
  assertion: exactly one positive solution exists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np


@dataclass(frozen=True)
class FixedPointCandidate:
    """One normalized solution of ``e T = a e``."""

    distribution: np.ndarray
    growth: float  # the eigenvalue a
    residual: float

    @property
    def is_positive(self) -> bool:
        """True iff every component is nonnegative up to float noise.

        The Perron vector is strictly positive in exact arithmetic, but
        components for astronomically rare states (e.g. a PMR leaf far
        over threshold) underflow toward 0; non-Perron candidates have
        components that are negative by O(1), so a small tolerance
        separates the cases cleanly.
        """
        return bool((self.distribution > -1e-12).all())

    @property
    def is_real(self) -> bool:
        """True iff the eigenpair is real (complex pairs are reported
        with their real parts and flagged here)."""
        return bool(self.residual < 1e-8)


def _validate(matrix: np.ndarray) -> np.ndarray:
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"matrix must be square, got {matrix.shape}")
    if (matrix < 0).any():
        raise ValueError("matrix entries must be nonnegative")
    return matrix


def enumerate_fixed_points(matrix: np.ndarray) -> List[FixedPointCandidate]:
    """All normalizable eigen-solutions of the quadratic system.

    Each left eigenvector with nonzero component sum normalizes to a
    candidate ``e``; its eigenvalue is the growth scalar ``a``.
    Eigenvectors with (numerically) zero sum cannot satisfy
    ``sum(e) = 1`` and are skipped.
    """
    matrix = _validate(matrix)
    values, vectors = np.linalg.eig(matrix.T)
    out: List[FixedPointCandidate] = []
    for k in range(len(values)):
        vec = vectors[:, k]
        total = vec.sum()
        if abs(total) < 1e-12:
            continue
        e = (vec / total).real
        a = values[k].real
        produced = e @ matrix
        residual = float(np.max(np.abs(produced - values[k].real * e)))
        # fold in the imaginary part as residual so complex pairs are
        # visibly not solutions of the real system
        residual += float(np.max(np.abs((vec / total).imag))) + abs(
            values[k].imag
        )
        out.append(FixedPointCandidate(e, float(a), residual))
    return out


def is_irreducible(matrix: np.ndarray) -> bool:
    """True iff the nonzero pattern of **T** is strongly connected.

    This is the Perron–Frobenius hypothesis: every node type can, via
    chains of insertions, produce every other type.  For PR transform
    matrices it holds because occupancy climbs to m by absorption and a
    split (row m) produces every occupancy.
    """
    matrix = _validate(matrix)
    n = matrix.shape[0]
    adjacency = matrix > 0

    def reachable(start: int, adj) -> np.ndarray:
        seen = np.zeros(n, dtype=bool)
        stack = [start]
        seen[start] = True
        while stack:
            i = stack.pop()
            for j in np.nonzero(adj[i])[0]:
                if not seen[j]:
                    seen[j] = True
                    stack.append(int(j))
        return seen

    return bool(
        reachable(0, adjacency).all() and reachable(0, adjacency.T).all()
    )


def verify_unique_positive(matrix: np.ndarray) -> FixedPointCandidate:
    """The paper's assurance, checked: exactly one positive solution.

    Enumerates every real candidate and asserts that exactly one is
    componentwise positive; returns it.  Raises ``ArithmeticError`` if
    zero or several positive solutions appear (which Perron–Frobenius
    forbids for irreducible **T** — so a failure indicates the matrix
    is not a valid transform matrix).
    """
    candidates = enumerate_fixed_points(matrix)
    positive = [c for c in candidates if c.is_real and c.is_positive]
    if len(positive) != 1:
        raise ArithmeticError(
            f"expected exactly one positive fixed point, found "
            f"{len(positive)}"
        )
    return positive[0]
