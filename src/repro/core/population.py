"""The population model — the paper's public face.

:class:`PopulationModel` bundles a splitting model (node capacity m and
split fanout ``b = 2^dim``) with a fixed-point solver and exposes the
predicted quantities the paper reports: the expected distribution
(Table 1's theory rows), the average node occupancy (Table 2's theory
column), and derived storage estimates.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .fixed_point import SteadyState, solve, solve_analytic
from .transform import (
    post_split_average_occupancy,
    recursion_probability,
    row_sums,
    transform_matrix,
)


class PopulationModel:
    """Population analysis of a generalized PR tree.

    Parameters
    ----------
    capacity:
        Node capacity m >= 1.
    dim:
        Dimensionality of the regular decomposition (2 = quadtree,
        3 = octree, 1 = bintree).  Mutually exclusive with ``buckets``.
    buckets:
        Split fanout b, overriding ``dim`` (e.g. 2 for a bintree that
        halves one axis per level regardless of spatial dimension).
    method:
        Solver: 'iteration' (the paper's), 'eigen', or 'newton'.

    >>> model = PopulationModel(capacity=1)
    >>> model.expected_distribution()
    array([0.5, 0.5])
    >>> model.average_occupancy()
    0.5
    """

    def __init__(
        self,
        capacity: int,
        dim: int = 2,
        buckets: Optional[int] = None,
        method: str = "iteration",
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if buckets is None:
            if dim < 1:
                raise ValueError(f"dim must be >= 1, got {dim}")
            buckets = 1 << dim
        elif buckets < 2:
            raise ValueError(f"buckets must be >= 2, got {buckets}")
        self._capacity = capacity
        self._buckets = buckets
        self._method = method
        self._matrix = transform_matrix(capacity, buckets)
        self._state: Optional[SteadyState] = None

    @property
    def capacity(self) -> int:
        """Node capacity m."""
        return self._capacity

    @property
    def buckets(self) -> int:
        """Split fanout b."""
        return self._buckets

    @property
    def transform(self) -> np.ndarray:
        """A copy of the transform matrix **T**."""
        return self._matrix.copy()

    def steady_state(self) -> SteadyState:
        """Solve (once, cached) and return the full steady state."""
        if self._state is None:
            self._state = solve(self._matrix, self._method)
        return self._state

    # ------------------------------------------------------------------
    # predictions
    # ------------------------------------------------------------------

    def expected_distribution(self) -> np.ndarray:
        """The expected distribution vector ``e`` — Table 1 theory rows."""
        return self.steady_state().distribution.copy()

    def average_occupancy(self) -> float:
        """Predicted mean points per node — Table 2 theory column."""
        return self.steady_state().average_occupancy()

    def storage_utilization(self) -> float:
        """Predicted fraction of node slots in use."""
        return self.steady_state().storage_utilization()

    def growth_rate(self) -> float:
        """The scalar ``a``: expected nodes produced per insertion.

        Net node growth per inserted point is ``a - 1``, so in steady
        state ``nodes ~ (a - 1) n`` — the companion identity
        ``average_occupancy == 1/(a - 1)`` is exercised by the tests.
        """
        return self.steady_state().growth

    def expected_nodes(self, n_points: int) -> float:
        """Predicted leaf count for a tree of ``n_points`` points."""
        if n_points < 0:
            raise ValueError(f"n_points must be >= 0, got {n_points}")
        return n_points / self.average_occupancy()

    def post_split_occupancy(self) -> float:
        """Mean occupancy of a freshly split family — the aging floor
        that Table 3's deep nodes decay toward (0.4 for m=1, b=4)."""
        return post_split_average_occupancy(self._capacity, self._buckets)

    def recursion_probability(self) -> float:
        """Chance a split cascades (all m+1 points in one quadrant)."""
        return recursion_probability(self._capacity, self._buckets)

    def compare_with_census(
        self, proportions: Sequence[float]
    ) -> "ModelComparison":
        """Pair the model's prediction with an observed proportion vector."""
        observed = np.asarray(proportions, dtype=float)
        expected = self.expected_distribution()
        if observed.shape != expected.shape:
            raise ValueError(
                f"observed vector has {observed.shape[0]} classes, "
                f"model has {expected.shape[0]}"
            )
        return ModelComparison(expected=expected, observed=observed)

    @staticmethod
    def analytic_m1(buckets: int = 4) -> SteadyState:
        """The closed-form m=1 solution (paper: e=(1/2,1/2) for b=4)."""
        return solve_analytic(buckets)


class ModelComparison:
    """Side-by-side of predicted and observed occupancy distributions."""

    def __init__(self, expected: np.ndarray, observed: np.ndarray):
        self.expected = expected
        self.observed = observed

    def max_abs_difference(self) -> float:
        """Largest componentwise gap between the two vectors."""
        return float(np.max(np.abs(self.expected - self.observed)))

    def total_variation(self) -> float:
        """Total-variation distance (half the L1 gap)."""
        return float(0.5 * np.sum(np.abs(self.expected - self.observed)))

    def occupancy_difference(self) -> float:
        """Theory average occupancy minus observed (positive = the
        paper's uniform over-prediction from aging)."""
        idx = np.arange(len(self.expected))
        return float(self.expected @ idx - self.observed @ idx)

    def percent_difference(self) -> float:
        """Table 2's "percent difference" column:
        100 * (theory - experiment) / experiment."""
        idx = np.arange(len(self.expected))
        observed_occ = float(self.observed @ idx)
        if observed_occ == 0:
            raise ValueError("observed occupancy is zero")
        return 100.0 * self.occupancy_difference() / observed_occ
