"""Extendible hashing — the paper's statistical comparator structure."""

from .extendible import (
    HASH_BITS,
    ExtendibleHashing,
    default_hash,
    splitmix64,
    uniform_float_hash,
)

__all__ = [
    "ExtendibleHashing",
    "HASH_BITS",
    "default_hash",
    "splitmix64",
    "uniform_float_hash",
]
