"""Extendible hashing (Fagin, Nievergelt, Pippenger & Strong, 1979).

The structure whose statistical analysis the paper cites as the
baseline: a directory of ``2^global_depth`` pointers into buckets of
fixed capacity, where a bucket overflow splits the bucket on the next
hash bit (doubling the directory when the bucket was at full depth).

Fagin et al. showed that under uniform hash values the expected bucket
occupancy does **not** converge as n grows — it oscillates with period
log 2 in n.  The paper identifies this as the same *phasing* phenomenon
it observes in PR quadtrees (period log 4, one split = four children).
The census interface here feeds the phasing experiments that draw that
parallel.
"""

from __future__ import annotations

from typing import Callable, Dict, Generic, Iterator, List, Optional, Tuple, TypeVar

from ..quadtree.census import OccupancyCensus

K = TypeVar("K")
V = TypeVar("V")

#: Number of hash bits a key mixer must supply.
HASH_BITS = 64


def splitmix64(x: int) -> int:
    """SplitMix64 finalizer — a cheap, well-distributed 64-bit mixer.

    Used to turn arbitrary Python ``hash()`` values into uniform bits so
    directory prefixes behave like the independent random bits Fagin's
    analysis assumes.
    """
    x &= (1 << 64) - 1
    x = (x + 0x9E3779B97F4A7C15) & ((1 << 64) - 1)
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & ((1 << 64) - 1)
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & ((1 << 64) - 1)
    return x ^ (x >> 31)


def default_hash(key: object) -> int:
    """Default key-to-bits function: Python hash pushed through SplitMix64."""
    return splitmix64(hash(key))


def uniform_float_hash(key: float) -> int:
    """Hash for keys already uniform on [0, 1) — the experimental model.

    Maps the unit interval linearly onto 64-bit strings, so the leading
    directory bits are literally the leading binary digits of the key.
    This reproduces the "uniform hash values" regime of Fagin's
    analysis exactly, with no mixing noise.
    """
    if not 0.0 <= key < 1.0:
        raise ValueError(f"uniform_float_hash needs key in [0,1), got {key}")
    return int(key * (1 << HASH_BITS))


class _Bucket(Generic[K, V]):
    """A fixed-capacity bucket shared by ``2^(global-local)`` slots."""

    __slots__ = ("local_depth", "items")

    def __init__(self, local_depth: int):
        self.local_depth = local_depth
        self.items: Dict[K, V] = {}


class ExtendibleHashing(Generic[K, V]):
    """An extendible hash table mapping keys to values.

    Parameters
    ----------
    bucket_capacity:
        Maximum items per bucket (m in the occupancy analysis).
    hash_func:
        Key-to-64-bit-int function; defaults to :func:`default_hash`.
    """

    def __init__(
        self,
        bucket_capacity: int = 4,
        hash_func: Optional[Callable[[K], int]] = None,
        max_global_depth: int = 22,
    ):
        if bucket_capacity < 1:
            raise ValueError(
                f"bucket_capacity must be >= 1, got {bucket_capacity}"
            )
        if not 1 <= max_global_depth <= HASH_BITS:
            raise ValueError(
                f"max_global_depth must be in 1..{HASH_BITS}"
            )
        self._capacity = bucket_capacity
        self._hash = hash_func if hash_func is not None else default_hash
        self._max_global_depth = max_global_depth
        self._global_depth = 0
        self._directory: List[_Bucket[K, V]] = [_Bucket(0)]
        self._size = 0

    @property
    def bucket_capacity(self) -> int:
        """Maximum items per bucket."""
        return self._capacity

    @property
    def global_depth(self) -> int:
        """Number of hash bits indexing the directory."""
        return self._global_depth

    @property
    def directory_size(self) -> int:
        """Number of directory slots (= 2^global_depth)."""
        return len(self._directory)

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: K) -> bool:
        return key in self._bucket_for(key).items

    # ------------------------------------------------------------------

    def _prefix(self, key: K, depth: int) -> int:
        """The leading ``depth`` hash bits of ``key`` (0 when depth=0)."""
        if depth == 0:
            return 0
        h = self._hash(key)
        if not 0 <= h < (1 << HASH_BITS):
            raise ValueError(f"hash_func must return {HASH_BITS}-bit ints")
        return h >> (HASH_BITS - depth)

    def _bucket_for(self, key: K) -> _Bucket[K, V]:
        return self._directory[self._prefix(key, self._global_depth)]

    def insert(self, key: K, value: V) -> None:
        """Insert or overwrite ``key``; splits on overflow.

        A split can leave one side still overfull when every item
        shares the next hash bit, so splitting repeats until all
        buckets fit (terminates because hash bits are finite and
        distinct keys eventually differ in some bit).
        """
        bucket = self._bucket_for(key)
        if key in bucket.items:
            bucket.items[key] = value
            return
        bucket.items[key] = value
        self._size += 1
        pending = [bucket]
        while pending:
            b = pending.pop()
            if len(b.items) <= self._capacity:
                continue
            if b.local_depth >= self._max_global_depth:
                raise RuntimeError(
                    f"cannot split past max_global_depth="
                    f"{self._max_global_depth}; keys share too long a "
                    "hash prefix"
                )
            pending.extend(self._split(b))

    def get(self, key: K) -> Optional[V]:
        """Look up ``key``; ``None`` if absent."""
        return self._bucket_for(key).items.get(key)

    def delete(self, key: K) -> bool:
        """Remove ``key``; returns ``False`` if absent.

        Buddy buckets whose combined load fits in one bucket are merged
        back, and the directory halves when every bucket's local depth
        drops below the global depth.
        """
        bucket = self._bucket_for(key)
        if key not in bucket.items:
            return False
        del bucket.items[key]
        self._size -= 1
        self._try_merge(bucket)
        self._try_shrink_directory()
        return True

    def items(self) -> Iterator[Tuple[K, V]]:
        """Iterate over all stored pairs."""
        seen = set()
        for b in self._directory:
            if id(b) in seen:
                continue
            seen.add(id(b))
            yield from b.items.items()

    def buckets(self) -> List[Tuple[int, int]]:
        """Distinct buckets as ``(local_depth, occupancy)`` pairs."""
        out = []
        seen = set()
        for b in self._directory:
            if id(b) in seen:
                continue
            seen.add(id(b))
            out.append((b.local_depth, len(b.items)))
        return out

    def bucket_count(self) -> int:
        """Number of distinct buckets."""
        return len(self.buckets())

    def occupancy_census(self) -> OccupancyCensus:
        """Census of distinct buckets by occupancy — the phasing probe."""
        occupancies = [occ for _, occ in self.buckets()]
        return OccupancyCensus.from_occupancies(occupancies, self._capacity)

    def average_occupancy(self) -> float:
        """Mean items per bucket."""
        return self._size / self.bucket_count()

    def storage_utilization(self) -> float:
        """Fagin's headline statistic: items / (buckets * capacity)."""
        return self._size / (self.bucket_count() * self._capacity)

    def validate(self) -> None:
        """Invariants: directory size is 2^global_depth; each bucket of
        local depth l is referenced by exactly 2^(g-l) contiguous slots
        agreeing on their leading l bits; every key hashes to its slot."""
        assert len(self._directory) == 1 << self._global_depth
        seen: Dict[int, List[int]] = {}
        for slot, b in enumerate(self._directory):
            seen.setdefault(id(b), []).append(slot)
        by_id = {id(b): b for b in self._directory}
        for bid, slots in seen.items():
            b = by_id[bid]
            expected = 1 << (self._global_depth - b.local_depth)
            assert len(slots) == expected, (
                f"bucket at depth {b.local_depth} has {len(slots)} slots, "
                f"expected {expected}"
            )
            assert slots == list(range(slots[0], slots[0] + expected))
            assert slots[0] % expected == 0
            for key in b.items:
                assert self._prefix(key, self._global_depth) in slots
            assert len(b.items) <= self._capacity

    # ------------------------------------------------------------------

    def _split(self, bucket: _Bucket[K, V]) -> Tuple["_Bucket[K, V]", "_Bucket[K, V]"]:
        """Split one bucket on its next hash bit; returns both halves."""
        if bucket.local_depth == self._global_depth:
            self._double_directory()
        new_depth = bucket.local_depth + 1
        zero = _Bucket[K, V](new_depth)
        one = _Bucket[K, V](new_depth)
        for key, value in bucket.items.items():
            prefix = self._prefix(key, new_depth)
            (one if prefix & 1 else zero).items[key] = value
        # Rewire every directory slot that pointed at the old bucket.
        for slot, b in enumerate(self._directory):
            if b is bucket:
                bit = (slot >> (self._global_depth - new_depth)) & 1
                self._directory[slot] = one if bit else zero
        return zero, one

    def _double_directory(self) -> None:
        self._directory = [b for b in self._directory for _ in range(2)]
        self._global_depth += 1

    def _buddy_slots(self, bucket: _Bucket[K, V]) -> Tuple[int, int]:
        """First slots of ``bucket`` and of its buddy at the same depth."""
        first = next(
            slot for slot, b in enumerate(self._directory) if b is bucket
        )
        span = 1 << (self._global_depth - bucket.local_depth)
        block = first // span
        buddy_first = (block ^ 1) * span
        return first, buddy_first

    def _try_merge(self, bucket: _Bucket[K, V]) -> None:
        while bucket.local_depth > 0:
            _, buddy_first = self._buddy_slots(bucket)
            buddy = self._directory[buddy_first]
            if buddy.local_depth != bucket.local_depth:
                return
            if len(bucket.items) + len(buddy.items) > self._capacity:
                return
            merged = _Bucket[K, V](bucket.local_depth - 1)
            merged.items.update(bucket.items)
            merged.items.update(buddy.items)
            for slot, b in enumerate(self._directory):
                if b is bucket or b is buddy:
                    self._directory[slot] = merged
            bucket = merged

    def _try_shrink_directory(self) -> None:
        while self._global_depth > 0 and all(
            b.local_depth < self._global_depth for b in self._directory
        ):
            self._directory = self._directory[::2]
            self._global_depth -= 1
