"""Vectorized fast paths for the experiment pipeline.

The object structures in :mod:`repro.quadtree` are the readable,
queryable reference implementations; this package holds numpy kernels
that reproduce specific reductions of them — bit-identically — without
materializing trees.  Currently:

- :func:`vector_census` / :class:`LeafPartition` — the Morton-code
  census engine, selected by ``engine="vector"`` in the runtime;
- :func:`vector_census_batch` — the same engine over a stack of
  trials at once (one interleave + one argsort per batch), which pool
  workers use to amortize numpy fixed costs across a whole chunk;
- :class:`QueryKernel` / :class:`PartialMatchResult` — sort-once batch
  *query* kernels over the same sorted Morton array: range queries as
  code-interval stabs, exact batched k-NN, and partial match with
  exact tree-visit cost accounting (``engine="vector"`` on the query
  paths).
"""

from .census import LeafPartition, vector_census, vector_census_batch
from .queries import PartialMatchResult, QueryKernel

__all__ = [
    "LeafPartition",
    "PartialMatchResult",
    "QueryKernel",
    "vector_census",
    "vector_census_batch",
]
