"""Vectorized batch query kernels over one sorted Morton-code array.

:func:`~repro.kernels.census.vector_census` made the *census* fast by
sorting every point's Morton code once and partitioning runs; this
module extends the same sort-once-then-vectorize idea to the query
paths a spatial service actually hammers.  A :class:`QueryKernel` is
built once per point set (dedupe, one descent, one interleave, one
argsort — the census engine's exact encoding) and then answers whole
*batches* of queries with numpy passes over the sorted array:

- **batch range** — each query box is covered by a small box of grid
  cells at a per-query depth (cells ≈ query size), the cells' Morton
  intervals are stabbed into the sorted codes with one
  ``np.searchsorted``, and the gathered candidates pass one exact
  coordinate filter.  The cell indices of the query's corners come
  from the same midpoint descent that encoded the points, so the
  cover is provably exact — no per-node Python dispatch anywhere.
- **batch k-NN** — a code-neighborhood window around each query's
  sorted position yields an upper bound ``r`` on the k-th distance
  (the window holds ≥ k real points), the closed box ``[q−r, q+r]``
  is gathered through the same cell cover, and the final answer is an
  exact vectorized select under the established deterministic
  ``(distance, point-order)`` tie-break.
- **partial match** — fixing a subset of coordinates selects the
  ``2^(dim−s)`` children intersecting the query hyperplane at every
  split, i.e. a *strided union* of code intervals.  The kernel
  refines prefix intervals level by level (child boundaries via
  ``searchsorted``, never touching the points until a leaf), which
  also yields the exact number of tree blocks a real search would
  visit — the cost figure the Curien–Joseph exponent experiment fits.

Exactness.  Range and k-NN results are bit-identical (as point *sets*,
reported in canonical lexicographic order) to
``PRQuadtree.range_search`` / ``nearest`` on the same stored points,
property-tested across structures, dimensions, duplicates, and
degenerate windows in ``tests/test_query_kernels.py``.  Two details
carry over from the census engine: coordinates are encoded by
replaying ``mid = (lo + hi) / 2.0`` per axis per level (never an
affine map), and k-NN distances accumulate per-axis squared terms in
axis order before one ``sqrt`` — the same float operation sequence as
``Point.distance_to``, so distance ties break identically.

One census-engine caveat does *not* apply here: near-coincident
points that outrun the 62-bit code budget need no recursive re-coding,
because every candidate gathered from a code interval passes an exact
coordinate (or distance) filter anyway.  Only the partial-match *cost*
accounting treats such beyond-budget blocks as leaves (the matches
stay exact); uniform workloads never get close to the budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from .. import obs
from ..geometry import Point, Rect, interleave_many
from .census import _CODE_BITS, _as_coord_array, _multi_arange

PointInput = Union[Sequence[Point], np.ndarray]

#: Per-query cap on covering grid cells.  The cover depth is the
#: deepest level whose cell-box stays under this; finer covers trade
#: fewer candidates for more searchsorted stabs, and the exact filter
#: makes any choice correct.
DEFAULT_CELL_BUDGET = 128


@dataclass(frozen=True)
class PartialMatchResult:
    """One batch of partial-match answers plus their exact tree cost.

    ``matches[i]`` is an ``(k_i, dim)`` float array of the stored
    points whose fixed coordinates equal query ``i``'s values, in
    canonical (lexicographic) order.  ``nodes_visited[i]`` counts the
    PR-quadtree blocks a real tree search would touch for query ``i``
    (internal nodes and leaves, empty leaves included) — the cost the
    partial-match scaling laws are fitted on; ``leaves_visited`` and
    ``points_scanned`` break that down.
    """

    matches: List[np.ndarray]
    nodes_visited: np.ndarray
    leaves_visited: np.ndarray
    points_scanned: np.ndarray


class QueryKernel:
    """Sort-once batch query engine over one stored point set.

    Build with :meth:`build`; parameters mirror
    :class:`~repro.quadtree.PRQuadtree` (``capacity`` only matters for
    partial-match cost accounting — range and k-NN answers are
    capacity-independent).  Exact duplicate points are dropped, as the
    tree's insert rejects them, so the kernel answers queries about
    the same stored *set* an object tree holds.
    """

    def __init__(
        self,
        coords: np.ndarray,
        codes: np.ndarray,
        pin: np.ndarray,
        levels: int,
        root_lo: np.ndarray,
        root_hi: np.ndarray,
        capacity: int,
        max_depth: Optional[int],
        bounds: Rect,
    ):
        self._coords = coords
        self._codes = codes
        self._pin = pin
        self._levels = levels
        self._root_lo = root_lo
        self._root_hi = root_hi
        self._capacity = capacity
        self._max_depth = max_depth
        self._bounds = bounds

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        points: PointInput,
        capacity: int = 1,
        bounds: Optional[Rect] = None,
        dim: int = 2,
        max_depth: Optional[int] = None,
    ) -> "QueryKernel":
        """Encode, sort, and index ``points`` for batch queries."""
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if bounds is None:
            bounds = Rect.unit(dim)
        elif bounds.dim != dim and dim != 2:
            raise ValueError(
                f"bounds dimension {bounds.dim} conflicts with dim={dim}"
            )
        if max_depth is not None and max_depth < 0:
            raise ValueError(f"max_depth must be >= 0, got {max_depth}")
        dim = bounds.dim
        if dim > _CODE_BITS:
            raise ValueError(
                f"query kernel supports dim <= {_CODE_BITS}, got {dim}"
            )
        with obs.span("kernel.query.build"):
            arr = _as_coord_array(points, dim)
            root_lo = np.asarray(bounds.lo.coords, dtype=np.float64)
            root_hi = np.asarray(bounds.hi.coords, dtype=np.float64)
            if arr.size:
                outside = ~((arr >= root_lo) & (arr < root_hi)).all(axis=1)
                if outside.any():
                    p = Point(*arr[outside][0])
                    raise ValueError(f"{p!r} outside bounds {bounds!r}")
            # normalize -0.0 and drop duplicates, like the tree's insert
            arr = np.unique(arr + 0.0, axis=0)
            levels = _CODE_BITS // dim
            cells, pin = _descend_cells(arr, root_lo, root_hi, levels)
            codes = (
                interleave_many(cells, levels)
                if arr.shape[0]
                else np.empty(0, dtype=np.uint64)
            )
            order = np.argsort(codes, kind="stable")
            kernel = cls(
                coords=arr[order],
                codes=codes[order],
                pin=pin[order],
                levels=levels,
                root_lo=root_lo,
                root_hi=root_hi,
                capacity=capacity,
                max_depth=max_depth,
                bounds=bounds,
            )
        if obs.enabled():
            obs.count("kernel.query.build")
            obs.count("kernel.query.indexed_points", int(arr.shape[0]))
        return kernel

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of stored (distinct) points."""
        return int(self._coords.shape[0])

    @property
    def dim(self) -> int:
        """Dimensionality of the space."""
        return int(self._root_lo.shape[0])

    @property
    def capacity(self) -> int:
        """Node capacity m used for partial-match cost accounting."""
        return self._capacity

    @property
    def bounds(self) -> Rect:
        """The root block."""
        return self._bounds

    def points(self) -> np.ndarray:
        """The stored points in Morton order (a read-only view)."""
        view = self._coords.view()
        view.flags.writeable = False
        return view

    # ------------------------------------------------------------------
    # batch range queries
    # ------------------------------------------------------------------

    def batch_range(
        self,
        rects: Sequence[Rect],
        cell_budget: int = DEFAULT_CELL_BUDGET,
    ) -> List[np.ndarray]:
        """All stored points inside each half-open query box.

        Returns one ``(k_i, dim)`` float array per query, rows in
        canonical (lexicographic) order — the same point set, after
        the same canonical sort, as ``PRQuadtree.range_search``.
        """
        queries = list(rects)
        dim = self.dim
        for rect in queries:
            if rect.dim != dim:
                raise ValueError(
                    f"query dimension {rect.dim} != kernel dim {dim}"
                )
        with obs.span("kernel.query.range"):
            n_queries = len(queries)
            if n_queries == 0 or self.size == 0:
                results = [
                    np.empty((0, dim), dtype=np.float64)
                    for _ in range(n_queries)
                ]
                self._count_range(n_queries, 0, 0, results)
                return results
            qlo = np.array([q.lo.coords for q in queries], dtype=np.float64)
            qhi = np.array([q.hi.coords for q in queries], dtype=np.float64)
            # a half-open box intersects the root iff, on every axis,
            # qlo < root_hi and qhi > root_lo
            live = (
                (qlo < self._root_hi) & (qhi > self._root_lo)
            ).all(axis=1)
            inner_hi = np.nextafter(self._root_hi, -np.inf)
            lo_corner = np.clip(qlo, self._root_lo, inner_hi)
            hi_corner = np.clip(
                np.nextafter(qhi, -np.inf), self._root_lo, inner_hi
            )
            iv_qid, iv_lo, iv_hi = self._box_cover(
                lo_corner[live], hi_corner[live], cell_budget
            )
            rows, cand_qid = self._gather(iv_qid, iv_lo, iv_hi)
            live_ids = np.flatnonzero(live)
            cand_qid = live_ids[cand_qid]
            pts = self._coords[rows]
            inside = (
                (pts >= qlo[cand_qid]) & (pts < qhi[cand_qid])
            ).all(axis=1)
            results = _split_rows(
                pts[inside], cand_qid[inside], n_queries, dim
            )
            self._count_range(
                n_queries, int(iv_qid.size), int(rows.size), results
            )
            return results

    def _count_range(
        self,
        n_queries: int,
        intervals: int,
        candidates: int,
        results: List[np.ndarray],
    ) -> None:
        if obs.enabled():
            obs.count("kernel.query.range", n_queries)
            obs.count("kernel.query.intervals", intervals)
            obs.count("kernel.query.candidates", candidates)
            obs.count(
                "kernel.query.hits",
                int(sum(r.shape[0] for r in results)),
            )

    # ------------------------------------------------------------------
    # batch k nearest neighbors
    # ------------------------------------------------------------------

    def batch_knn(
        self,
        queries: Union[Sequence[Point], np.ndarray],
        k: int = 1,
        cell_budget: int = DEFAULT_CELL_BUDGET,
    ) -> List[np.ndarray]:
        """The ``k`` stored points nearest each query point.

        Each result is a ``(min(k, size), dim)`` float array ordered by
        increasing distance with exact ties broken by lexicographic
        coordinates — bit-identical to ``PRQuadtree.nearest``.  Query
        points may lie outside the root block, exactly like the tree's.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        dim = self.dim
        qarr = _as_coord_array(queries, dim)
        with obs.span("kernel.query.knn"):
            n_queries = int(qarr.shape[0])
            n = self.size
            if n_queries == 0 or n == 0:
                if obs.enabled():
                    obs.count("kernel.query.knn", n_queries)
                return [
                    np.empty((0, dim), dtype=np.float64)
                    for _ in range(n_queries)
                ]
            k_eff = min(k, n)

            # -- phase 1: seed windows around each query's code position
            inner_hi = np.nextafter(self._root_hi, -np.inf)
            clamped = np.clip(qarr, self._root_lo, inner_hi)
            qcells, _ = _descend_cells(
                clamped, self._root_lo, self._root_hi, self._levels
            )
            qcodes = interleave_many(qcells, self._levels)
            pos = np.searchsorted(self._codes, qcodes, side="left")
            width = min(n, 2 * max(k_eff, 16))
            starts = np.clip(pos - width // 2, 0, n - width)
            window = self._coords[
                starts[:, None] + np.arange(width)[None, :]
            ]
            dists = _exact_distances(window, qarr[:, None, :])
            radii = np.partition(dists, k_eff - 1, axis=1)[:, k_eff - 1]

            # -- phase 2: gather the closed box [q-r, q+r] exactly.
            # The box always meets the root (it holds >= k_eff stored
            # points), so every query stays live.
            lo_corner = np.clip(
                qarr - radii[:, None], self._root_lo, inner_hi
            )
            hi_corner = np.clip(
                qarr + radii[:, None], self._root_lo, inner_hi
            )
            iv_qid, iv_lo, iv_hi = self._box_cover(
                lo_corner, hi_corner, cell_budget
            )
            rows, cand_qid = self._gather(iv_qid, iv_lo, iv_hi)
            pts = self._coords[rows]
            dists = _exact_distances(pts, qarr[cand_qid])
            keep = dists <= radii[cand_qid]
            pts, dists, cand_qid = pts[keep], dists[keep], cand_qid[keep]

            # -- exact select: per query, the k smallest under the
            # deterministic (distance, coords) tie-break
            order = np.lexsort(
                tuple(pts[:, a] for a in range(dim - 1, -1, -1))
                + (dists, cand_qid)
            )
            pts, cand_qid = pts[order], cand_qid[order]
            bounds_idx = np.searchsorted(
                cand_qid, np.arange(n_queries + 1)
            )
            take = _multi_arange_safe(
                bounds_idx[:-1],
                np.minimum(bounds_idx[:-1] + k_eff, bounds_idx[1:]),
            )
            taken = pts[take]
            counts = np.minimum(bounds_idx[1:] - bounds_idx[:-1], k_eff)
            offsets = np.concatenate([[0], np.cumsum(counts)])
            results = [
                taken[offsets[q]:offsets[q + 1]]
                for q in range(n_queries)
            ]
            if obs.enabled():
                obs.count("kernel.query.knn", n_queries)
                obs.count("kernel.query.intervals", int(iv_qid.size))
                obs.count("kernel.query.candidates", int(rows.size))
            return results

    # ------------------------------------------------------------------
    # batch partial match
    # ------------------------------------------------------------------

    def batch_partial_match(
        self,
        axes: Sequence[int],
        values: Union[Sequence[Sequence[float]], np.ndarray],
    ) -> PartialMatchResult:
        """Stored points whose ``axes`` coordinates equal each query's
        ``values`` — plus the exact number of tree blocks a real
        partial-match search visits.

        ``axes`` is the set of fixed axes (shared by the batch);
        ``values`` is ``(n_queries, len(axes))``.  The kernel refines
        code-prefix intervals level by level, descending only into the
        ``2^(dim-s)`` children per node that intersect the query
        hyperplane — the "strided interval union" reading of a partial
        match on a z-order.  Visit counts include empty sibling
        leaves, exactly as a tree walk would touch them.
        """
        dim = self.dim
        fixed = list(axes)
        if len(set(fixed)) != len(fixed):
            raise ValueError(f"duplicate fixed axes in {axes!r}")
        for a in fixed:
            if not 0 <= a < dim:
                raise ValueError(f"axis {a} out of range for dim {dim}")
        if not fixed:
            raise ValueError("partial match needs at least one fixed axis")
        vals = np.asarray(values, dtype=np.float64)
        if vals.ndim == 1:
            vals = vals.reshape(1, -1)
        if vals.ndim != 2 or vals.shape[1] != len(fixed):
            raise ValueError(
                f"values shape {vals.shape} does not match "
                f"{len(fixed)} fixed axes"
            )
        with obs.span("kernel.query.partial_match"):
            result = self._partial_match(fixed, vals)
        if obs.enabled():
            obs.count("kernel.query.partial_match", int(vals.shape[0]))
            obs.count(
                "kernel.query.pm_nodes", int(result.nodes_visited.sum())
            )
            obs.count(
                "kernel.query.candidates",
                int(result.points_scanned.sum()),
            )
        return result

    def _partial_match(
        self, fixed: List[int], vals: np.ndarray
    ) -> PartialMatchResult:
        dim = self.dim
        n_queries = int(vals.shape[0])
        n = self.size
        s = len(fixed)
        free_axes = [a for a in range(dim) if a not in fixed]
        free_fanout = 1 << (dim - s)
        # bit of axis a sits at position (dim-1-a) within a Morton
        # digit; enumerate the free-axis bit patterns once
        free_patterns = np.zeros(free_fanout, dtype=np.uint64)
        for combo in range(free_fanout):
            bits = 0
            for j, a in enumerate(free_axes):
                if (combo >> j) & 1:
                    bits |= 1 << (dim - 1 - a)
            free_patterns[combo] = bits

        nodes = np.zeros(n_queries, dtype=np.int64)
        leaves = np.zeros(n_queries, dtype=np.int64)
        scanned = np.zeros(n_queries, dtype=np.int64)
        hit_rows: List[np.ndarray] = []
        hit_qids: List[np.ndarray] = []
        empty = np.empty((0, dim), dtype=np.float64)

        # the root is visited iff it contains the query hyperplane
        in_root = np.ones(n_queries, dtype=bool)
        for j, a in enumerate(fixed):
            in_root &= (vals[:, j] >= self._root_lo[a]) & (
                vals[:, j] < self._root_hi[a]
            )
        qid = np.flatnonzero(in_root)
        nodes[qid] += 1
        if n == 0:
            leaves[qid] += 1
            return PartialMatchResult(
                [empty] * n_queries, nodes, leaves, scanned
            )
        starts = np.zeros(qid.size, dtype=np.int64)
        stops = np.full(qid.size, n, dtype=np.int64)
        prefix = np.zeros(qid.size, dtype=np.uint64)
        # per-run bounds along the fixed axes only (midpoint replay)
        flo = np.repeat(self._root_lo[fixed][None, :], qid.size, axis=0)
        fhi = np.repeat(self._root_hi[fixed][None, :], qid.size, axis=0)
        depth = 0
        while starts.size:
            counts = stops - starts
            is_leaf = (counts <= self._capacity) | (
                self._pin[starts] <= depth
            )
            if self._max_depth is not None and depth >= self._max_depth:
                is_leaf[:] = True
            if depth == self._levels:
                # beyond the code budget: account the block as one leaf
                # (matches stay exact; see the module docstring)
                is_leaf[:] = True
            if is_leaf.any():
                leaf_qid = qid[is_leaf]
                np.add.at(leaves, leaf_qid, 1)
                np.add.at(scanned, leaf_qid, counts[is_leaf])
                rows = _multi_arange_safe(starts[is_leaf], stops[is_leaf])
                row_qid = np.repeat(leaf_qid, counts[is_leaf])
                pts = self._coords[rows]
                match = np.ones(rows.size, dtype=bool)
                for j, a in enumerate(fixed):
                    match &= pts[:, a] == vals[row_qid, j]
                if match.any():
                    hit_rows.append(pts[match])
                    hit_qids.append(row_qid[match])
                keep = ~is_leaf
                starts, stops = starts[keep], stops[keep]
                qid, prefix = qid[keep], prefix[keep]
                flo, fhi = flo[keep], fhi[keep]
                if not starts.size:
                    break
            # split every remaining run: child code boundaries via
            # searchsorted on the 2^(dim-s) hyperplane-side children
            mid = (flo + fhi) / 2.0
            geq = vals[qid] >= mid
            fval = np.zeros(qid.size, dtype=np.uint64)
            for j, a in enumerate(fixed):
                fval |= geq[:, j].astype(np.uint64) << np.uint64(
                    dim - 1 - a
                )
            child_digits = fval[:, None] | free_patterns[None, :]
            child_prefix = (
                prefix[:, None] << np.uint64(dim)
            ) | child_digits
            step = np.uint64((self._levels - 1 - depth) * dim)
            child_lo = child_prefix << step
            child_hi = (child_prefix + np.uint64(1)) << step
            c_starts = np.searchsorted(
                self._codes, child_lo.ravel(), side="left"
            )
            c_stops = np.searchsorted(
                self._codes, child_hi.ravel(), side="left"
            )
            occupied = c_stops > c_starts
            # every split node owns 2^(dim-s) intersecting children;
            # the ones without points are empty leaves the walk visits
            np.add.at(nodes, qid, free_fanout)
            empties = free_fanout - occupied.reshape(
                -1, free_fanout
            ).sum(axis=1)
            if empties.any():
                np.add.at(leaves, qid, empties)
            # descend into the occupied children
            run_of = np.repeat(np.arange(qid.size), free_fanout)[occupied]
            starts = c_starts[occupied]
            stops = c_stops[occupied]
            prefix = child_prefix.ravel()[occupied]
            child_geq = geq[run_of]
            flo = np.where(child_geq, mid[run_of], flo[run_of])
            fhi = np.where(child_geq, fhi[run_of], mid[run_of])
            qid = qid[run_of]
            depth += 1

        if hit_rows:
            pts = np.concatenate(hit_rows, axis=0)
            pt_qid = np.concatenate(hit_qids)
            matches = _split_rows(pts, pt_qid, n_queries, dim)
        else:
            matches = [empty] * n_queries
        return PartialMatchResult(matches, nodes, leaves, scanned)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _box_cover(
        self,
        lo_corner: np.ndarray,
        hi_corner: np.ndarray,
        cell_budget: int,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Merged code intervals covering every stored point inside
        each closed corner box (corners already clamped into the root).

        Per query, the corners are run through the same midpoint
        descent that encoded the points, giving their grid-cell
        indices at every depth; the chosen depth is the deepest whose
        index box holds at most ``cell_budget`` cells.  Because the
        per-axis descent index is monotone in the coordinate, every
        stored point between the corners lands inside that index box
        — the cover is exact by construction, with zero float slop.

        Returns ``(qid, lo_code, hi_code)`` arrays, qid-major with
        ascending, disjoint, adjacency-merged intervals.
        """
        if cell_budget < 1:
            raise ValueError(
                f"cell_budget must be >= 1, got {cell_budget}"
            )
        n_queries, dim = lo_corner.shape
        e_int = np.empty(0, dtype=np.int64)
        e_code = np.empty(0, dtype=np.uint64)
        if n_queries == 0:
            return e_int, e_code, e_code
        levels = self._levels
        lo_cells, _ = _descend_cells(
            lo_corner, self._root_lo, self._root_hi, levels
        )
        hi_cells, _ = _descend_cells(
            hi_corner, self._root_lo, self._root_hi, levels
        )
        # cell-box sizes at every depth L: index >> (levels - L)
        shifts = np.arange(levels, -1, -1, dtype=np.uint64)[None, None, :]
        spans = (
            (hi_cells[:, :, None] >> shifts)
            - (lo_cells[:, :, None] >> shifts)
            + np.uint64(1)
        )
        totals = spans.astype(np.float64).prod(axis=1)
        depth_pick = (totals <= float(cell_budget)).sum(axis=1) - 1
        sh = (levels - depth_pick).astype(np.uint64)
        lo_idx = lo_cells >> sh[:, None]
        sizes = (hi_cells >> sh[:, None]) - lo_idx + np.uint64(1)

        # ragged row-major enumeration of every query's cell box
        per_query = sizes.prod(axis=1).astype(np.int64)
        offsets = np.concatenate([[0], np.cumsum(per_query)])
        total = int(offsets[-1])
        row_qid = np.repeat(np.arange(n_queries), per_query)
        local = (np.arange(total) - offsets[row_qid]).astype(np.uint64)
        stride = np.ones_like(sizes)
        for a in range(dim - 2, -1, -1):
            stride[:, a] = stride[:, a + 1] * sizes[:, a + 1]
        cells = (
            lo_idx[row_qid]
            + (local[:, None] // stride[row_qid]) % sizes[row_qid]
        )
        # shifting every axis index left by sh shifts the interleaved
        # code left by sh*dim: cell code intervals at full resolution
        cells <<= sh[row_qid][:, None]
        code_lo = interleave_many(cells, levels)
        step = np.uint64(1) << (sh[row_qid] * np.uint64(dim))
        code_hi = code_lo + step

        order = np.lexsort((code_lo, row_qid))
        row_qid, code_lo, code_hi = (
            row_qid[order], code_lo[order], code_hi[order]
        )
        head = np.empty(total, dtype=bool)
        head[0] = True
        head[1:] = (row_qid[1:] != row_qid[:-1]) | (
            code_lo[1:] != code_hi[:-1]
        )
        heads = np.flatnonzero(head)
        tails = np.append(heads[1:], total) - 1
        return row_qid[heads], code_lo[heads], code_hi[tails]

    def _gather(
        self, qids: np.ndarray, los: np.ndarray, his: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Stab every code interval into the sorted array; returns
        candidate row indices and their (local) query ids, grouped by
        query with ascending rows within each."""
        if qids.size == 0:
            e = np.empty(0, dtype=np.int64)
            return e, e
        starts = np.searchsorted(self._codes, los, side="left")
        stops = np.searchsorted(self._codes, his, side="left")
        lengths = stops - starts
        nonempty = lengths > 0
        if not nonempty.any():
            e = np.empty(0, dtype=np.int64)
            return e, e
        starts, stops, qids = (
            starts[nonempty], stops[nonempty], qids[nonempty]
        )
        rows = _multi_arange(starts, stops)
        return rows, np.repeat(qids, stops - starts)


# ----------------------------------------------------------------------
# module helpers
# ----------------------------------------------------------------------


def _descend_cells(
    arr: np.ndarray,
    root_lo: np.ndarray,
    root_hi: np.ndarray,
    levels: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-axis grid-cell bit strings (and first-unsplittable-depth
    pins) by replaying the tree's descent arithmetic — the census
    engine's encoding, pre-interleave."""
    n, dim = arr.shape
    lo = np.repeat(root_lo[None, :], n, axis=0)
    hi = np.repeat(root_hi[None, :], n, axis=0)
    cells = np.zeros((n, dim), dtype=np.uint64)
    pin = np.full(n, levels + 1, dtype=np.int64)
    one = np.uint64(1)
    for level in range(levels):
        mid = (lo + hi) / 2.0
        stuck = ~((lo < mid) & (mid < hi)).all(axis=1)
        pin = np.where((pin > levels) & stuck, level, pin)
        geq = arr >= mid
        cells = (cells << one) | geq.astype(np.uint64)
        lo = np.where(geq, mid, lo)
        hi = np.where(geq, hi, mid)
    return cells, pin


def _exact_distances(pts: np.ndarray, q: np.ndarray) -> np.ndarray:
    """Euclidean distances with ``Point.distance_to``'s exact float
    operation order: squared axis terms accumulated left to right,
    then one sqrt — so distance ties break bit-identically."""
    acc = np.zeros(np.broadcast_shapes(pts.shape, q.shape)[:-1], dtype=np.float64)
    for a in range(pts.shape[-1]):
        d = pts[..., a] - q[..., a]
        acc = acc + d * d
    return np.sqrt(acc)


def _multi_arange_safe(
    starts: np.ndarray, stops: np.ndarray
) -> np.ndarray:
    """:func:`_multi_arange` tolerating empty runs and empty input."""
    lengths = stops - starts
    keep = lengths > 0
    if not keep.any():
        return np.empty(0, dtype=np.int64)
    return _multi_arange(starts[keep], stops[keep])


def _split_rows(
    pts: np.ndarray, qid: np.ndarray, n_queries: int, dim: int
) -> List[np.ndarray]:
    """Group rows by query id and put each query's rows in canonical
    (lexicographic) order, in one global lexsort."""
    empty = np.empty((0, dim), dtype=np.float64)
    if pts.shape[0] == 0:
        return [empty for _ in range(n_queries)]
    order = np.lexsort(
        tuple(pts[:, a] for a in range(dim - 1, -1, -1)) + (qid,)
    )
    pts, qid = pts[order], qid[order]
    bounds_idx = np.searchsorted(qid, np.arange(n_queries + 1))
    return [
        pts[bounds_idx[q]:bounds_idx[q + 1]] for q in range(n_queries)
    ]
