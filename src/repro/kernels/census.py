"""The vectorized Morton-code census engine.

The experiment pipeline spends ~99% of its time *building* Python
object trees it only ever reduces to an occupancy histogram.  But the
PR quadtree's quadrant path is exactly the prefix of a Morton code
(Orenstein's bit-interleaved tries [Oren82] — see
:mod:`repro.geometry.morton`), so the steady-state census can be
computed straight from the point coordinates:

1. **codes** — descend every point through the regular decomposition at
   once (numpy, level by level), reading off one quadrant bit per axis
   per level, and pack the per-axis bit strings into Morton codes with
   :func:`repro.geometry.interleave_many`;
2. **sort** — one ``argsort`` puts every depth-``k`` block's points
   into a contiguous run, for every ``k`` simultaneously;
3. **partition** — apply the PR splitting rule ("split while a block
   holds more than ``capacity`` points") to the sorted codes: walk the
   prefix depths, splitting only the still-overfull runs, and read leaf
   occupancies off the run lengths.  Empty sibling blocks of each split
   are counted too — they are leaves of the real tree.

Exactness.  The engine is *bit-identical* to
``PRQuadtree(...).occupancy_census()`` / ``.depth_census()`` for any
dimension, capacity, depth limit, bounds, and duplicate-containing
input, which the parity suite (``tests/test_kernel_parity.py``)
enforces.  Two details make that work:

- Coordinates are quantized by replaying the tree's own float
  arithmetic — ``mid = (lo + hi) / 2.0`` per axis per level, exactly
  :meth:`Point.midpoint` inside :meth:`Rect.child` — rather than by an
  affine ``(p - lo) / side * 2**bits`` map, which rounds differently
  for non-dyadic bounds and would misplace points that sit within one
  ulp of a block boundary.
- The tree's two overflow floors are reproduced: a block pins (stops
  splitting, keeps its overflow) at ``max_depth`` and wherever float
  precision makes its rect unsplittable (``Rect.is_splittable``), and
  near-coincident points that need more resolution than one 62-bit
  code are handled by re-running the engine inside their block with a
  fresh code budget (the ``deep group`` path).

The object tree remains the parity oracle; this engine is the fast
path for census-only workloads (it cannot answer point queries and
does not materialize blocks, so ``collect_area`` experiments still use
the object engine).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from .. import obs
from ..geometry import Point, Rect, interleave_many
from ..quadtree import DepthCensus, OccupancyCensus

#: Morton codes must stay exact in int64/uint64 arithmetic.
_CODE_BITS = 62

PointInput = Union[Sequence[Point], np.ndarray]


@dataclass(frozen=True)
class LeafPartition:
    """The leaf census of a PR quadtree, without the tree.

    One entry per leaf block: its depth and its occupancy (which may
    exceed ``capacity`` for blocks pinned by a depth limit or float
    precision, exactly like the object tree's leaves).
    """

    capacity: int
    depths: np.ndarray
    occupancies: np.ndarray

    @property
    def leaf_count(self) -> int:
        """Number of leaf blocks (matches ``PRQuadtree.leaf_count``)."""
        return int(self.depths.size)

    @property
    def size(self) -> int:
        """Number of stored (distinct) points."""
        return int(self.occupancies.sum())

    def height(self) -> int:
        """Depth of the deepest leaf (matches ``PRQuadtree.height``)."""
        return int(self.depths.max())

    def _clamped(self, clamp_overflow: bool) -> np.ndarray:
        if not clamp_overflow:
            over = self.occupancies > self.capacity
            if over.any():
                occ = int(self.occupancies[over][0])
                raise ValueError(
                    f"leaf occupancy {occ} exceeds capacity {self.capacity}"
                )
        return np.minimum(self.occupancies, self.capacity)

    def occupancy_census(self, clamp_overflow: bool = True) -> OccupancyCensus:
        """Census of leaves by occupancy — bit-identical to
        ``PRQuadtree.occupancy_census`` on the same points."""
        return OccupancyCensus.from_occupancies(
            self._clamped(clamp_overflow), self.capacity
        )

    def depth_census(self, clamp_overflow: bool = True) -> DepthCensus:
        """Census of leaves by (depth, occupancy) — bit-identical to
        ``PRQuadtree.depth_census`` on the same points."""
        occ = self._clamped(clamp_overflow)
        by_depth = {}
        for depth in np.unique(self.depths):
            row = np.bincount(
                occ[self.depths == depth], minlength=self.capacity + 1
            )
            by_depth[int(depth)] = tuple(row.tolist())
        return DepthCensus(by_depth, self.capacity)


def _as_coord_array(points: PointInput, dim: int) -> np.ndarray:
    """Lower a point sequence (or a ready array) to ``(n, dim)`` floats."""
    if isinstance(points, np.ndarray):
        arr = np.asarray(points, dtype=np.float64)
        if arr.ndim == 1:
            arr = arr.reshape(-1, 1) if dim == 1 else arr.reshape(1, -1)
    else:
        seq = list(points)
        if not seq:
            return np.empty((0, dim), dtype=np.float64)
        arr = np.array([tuple(p) for p in seq], dtype=np.float64)
    if arr.ndim != 2 or arr.shape[1] != dim:
        raise ValueError(
            f"points have dimension {arr.shape[1:] or '?'}, expected {dim}"
        )
    return arr


def _splittable(lo: np.ndarray, hi: np.ndarray) -> bool:
    """``Rect.is_splittable`` on raw corner arrays."""
    mid = (lo + hi) / 2.0
    return bool(((lo < mid) & (mid < hi)).all())


def vector_census(
    points: PointInput,
    capacity: int,
    bounds: Optional[Rect] = None,
    dim: int = 2,
    max_depth: Optional[int] = None,
) -> LeafPartition:
    """Exact PR-quadtree leaf census of ``points``, without the tree.

    Parameters mirror :class:`~repro.quadtree.PRQuadtree`: ``capacity``
    is the node capacity m, ``bounds`` the root block (default the unit
    box), ``dim`` the dimensionality when ``bounds`` is omitted, and
    ``max_depth`` the optional truncation.  ``points`` may be a
    sequence of :class:`Point` or an ``(n, dim)`` float array; exact
    duplicates are dropped, as the tree's insert rejects them.

    Raises ``ValueError`` for points outside the root block, exactly
    like ``PRQuadtree.insert``.
    """
    if capacity < 1:
        raise ValueError(f"capacity must be >= 1, got {capacity}")
    if bounds is None:
        bounds = Rect.unit(dim)
    elif bounds.dim != dim and dim != 2:
        raise ValueError(
            f"bounds dimension {bounds.dim} conflicts with dim={dim}"
        )
    if max_depth is not None and max_depth < 0:
        raise ValueError(f"max_depth must be >= 0, got {max_depth}")
    dim = bounds.dim
    if dim > _CODE_BITS:
        raise ValueError(
            f"vector engine supports dim <= {_CODE_BITS}, got {dim}"
        )

    with obs.span("kernel.census"):
        arr = _as_coord_array(points, dim)
        root_lo = np.asarray(bounds.lo.coords, dtype=np.float64)
        root_hi = np.asarray(bounds.hi.coords, dtype=np.float64)
        outside = ~((arr >= root_lo) & (arr < root_hi)).all(axis=1)
        if outside.any():
            p = Point(*arr[outside][0])
            raise ValueError(f"{p!r} outside tree bounds {bounds!r}")
        # Normalize -0.0 to +0.0 so the bitwise row-dedupe below agrees
        # with the tree's float-equality duplicate rejection.
        arr = arr + 0.0
        arr = np.unique(arr, axis=0)

        depth_chunks: List[np.ndarray] = []
        occ_chunks: List[np.ndarray] = []
        # Worklist instead of recursion: near-coincident points can need
        # dozens of 62-bit code rounds before they separate.
        pending = [(arr, root_lo, root_hi, max_depth, 0)]
        deep_groups = -1  # the root job is not a deep group
        while pending:
            deep_groups += 1
            job = pending.pop()
            _partition_block(
                *job, capacity, depth_chunks, occ_chunks, pending
            )

        depths = (
            np.concatenate(depth_chunks)
            if depth_chunks else np.empty(0, dtype=np.int64)
        )
        occs = (
            np.concatenate(occ_chunks)
            if occ_chunks else np.empty(0, dtype=np.int64)
        )
        if obs.enabled():
            obs.count("kernel.census")
            obs.count("kernel.points", int(arr.shape[0]))
            obs.count("kernel.leaves", int(depths.size))
            if deep_groups:
                obs.count("kernel.deep_groups", deep_groups)
            obs.gauge("kernel.depth", int(depths.max()) if depths.size else 0)
        return LeafPartition(
            capacity=capacity,
            depths=depths,
            occupancies=occs.astype(np.int64),
        )


def _partition_block(
    pts: np.ndarray,
    root_lo: np.ndarray,
    root_hi: np.ndarray,
    max_depth: Optional[int],
    depth_offset: int,
    capacity: int,
    depth_chunks: List[np.ndarray],
    occ_chunks: List[np.ndarray],
    pending: List[Tuple],
) -> None:
    """Partition one block's points into leaves (appended to the chunk
    lists); blocks needing more than one code's worth of depth are
    pushed onto ``pending``.

    ``max_depth`` is relative to this block; ``depth_offset`` converts
    local depths back to tree depths for the output records.
    """
    n, dim = pts.shape
    fanout = 1 << dim
    if (
        n <= capacity
        or (max_depth is not None and max_depth <= 0)
        or not _splittable(root_lo, root_hi)
    ):
        depth_chunks.append(np.array([depth_offset], dtype=np.int64))
        occ_chunks.append(np.array([n], dtype=np.int64))
        return

    levels = _CODE_BITS // dim
    if max_depth is not None:
        levels = min(levels, max_depth)

    # -- codes: replay the tree's descent arithmetic, vectorized -------
    with obs.span("kernel.codes"):
        lo = np.repeat(root_lo[None, :], n, axis=0)
        hi = np.repeat(root_hi[None, :], n, axis=0)
        cells = np.zeros((n, dim), dtype=np.uint64)
        # first depth at which a point's block cannot split (sentinel:
        # deeper than any partition depth this round)
        pin = np.full(n, levels + 1, dtype=np.int64)
        one = np.uint64(1)
        for level in range(levels):
            mid = (lo + hi) / 2.0
            stuck = ~((lo < mid) & (mid < hi)).all(axis=1)
            pin = np.where((pin > levels) & stuck, level, pin)
            geq = pts >= mid
            cells = (cells << one) | geq.astype(np.uint64)
            lo = np.where(geq, mid, lo)
            hi = np.where(geq, hi, mid)
        codes = interleave_many(cells, levels)

    with obs.span("kernel.sort"):
        order = np.argsort(codes, kind="stable")
        sorted_codes = codes[order]
        sorted_pin = pin[order]

    # -- partition: the splitting rule over sorted code prefixes -------
    with obs.span("kernel.partition"):
        # invariant: (starts, stops) are runs holding > capacity points
        # whose depth-`depth` block has not yet been checked for pinning
        starts = np.array([0], dtype=np.int64)
        stops = np.array([n], dtype=np.int64)
        depth = 0
        while starts.size:
            counts = stops - starts
            pinned = sorted_pin[starts] <= depth
            if max_depth is not None and depth >= max_depth:
                pinned = np.ones(starts.size, dtype=bool)
            if pinned.any():
                k = int(pinned.sum())
                depth_chunks.append(
                    np.full(k, depth_offset + depth, dtype=np.int64)
                )
                occ_chunks.append(counts[pinned])
                keep = ~pinned
                starts, stops = starts[keep], stops[keep]
                if not starts.size:
                    break
            if depth == levels:
                # overfull beyond this code's resolution: re-run inside
                # the block with a fresh 62-bit budget (rare — only
                # near-coincident point groups land here)
                sub_md = None if max_depth is None else max_depth - levels
                for s, e in zip(starts.tolist(), stops.tolist()):
                    idx = order[s:e]
                    pending.append((
                        pts[idx],
                        lo[idx[0]].copy(),
                        hi[idx[0]].copy(),
                        sub_md,
                        depth_offset + levels,
                    ))
                break
            # split every remaining run on its next Morton digit
            shift = np.uint64((levels - 1 - depth) * dim)
            mask = np.uint64(fanout - 1)
            pos = _multi_arange(starts, stops)
            digits = (sorted_codes[pos] >> shift) & mask
            group = np.repeat(np.arange(starts.size), stops - starts)
            new_run = np.empty(pos.size, dtype=bool)
            new_run[0] = True
            new_run[1:] = (digits[1:] != digits[:-1]) | (
                group[1:] != group[:-1]
            )
            run_heads = np.flatnonzero(new_run)
            run_counts = np.diff(np.append(run_heads, pos.size))
            run_starts = pos[run_heads]
            # children with no points are still leaves of the tree
            occupied = np.bincount(group[run_heads], minlength=starts.size)
            n_empty = int((fanout - occupied).sum())
            if n_empty:
                depth_chunks.append(
                    np.full(n_empty, depth_offset + depth + 1, dtype=np.int64)
                )
                occ_chunks.append(np.zeros(n_empty, dtype=np.int64))
            resolved = run_counts <= capacity
            if resolved.any():
                depth_chunks.append(
                    np.full(
                        int(resolved.sum()),
                        depth_offset + depth + 1,
                        dtype=np.int64,
                    )
                )
                occ_chunks.append(run_counts[resolved])
            starts = run_starts[~resolved]
            stops = starts + run_counts[~resolved]
            depth += 1


def vector_census_batch(
    points: np.ndarray,
    capacity: int,
    bounds: Optional[Rect] = None,
    dim: int = 2,
    max_depth: Optional[int] = None,
) -> List[LeafPartition]:
    """Exact PR-quadtree leaf censuses of ``B`` trials in one kernel
    pass — the pool workers' amortized fast path.

    ``points`` is a ``(B, n, dim)`` float64 tensor: ``B`` independent
    trials of ``n`` points each over the same ``bounds``.  The batch
    shares one vectorized descent, one Morton interleave, and one
    (row-wise) argsort across all trials; the splitting-rule loop then
    walks every trial's runs *simultaneously*, with a per-run trial
    tag carried alongside the ``(start, stop)`` segment boundaries so
    each leaf lands in its own trial's partition.  Element ``t`` of
    the result is bit-identical to
    ``vector_census(points[t], capacity, bounds, dim, max_depth)``
    (property-tested in ``tests/test_kernel_parity.py``).

    Unlike :func:`vector_census`, the batch path does **not** dedupe:
    each trial's rows must already be distinct (the runtime's
    generators guarantee it; ``generate`` never repeats a point).
    Exact duplicates would mean "occupancy counts disagree with the
    object tree", so they are a contract violation, not an input case.
    """
    arr = np.asarray(points, dtype=np.float64)
    if arr.ndim != 3:
        raise ValueError(
            f"batch points must be (trials, n, dim), got shape {arr.shape}"
        )
    n_trials = int(arr.shape[0])
    if n_trials == 0:
        return []
    if capacity < 1:
        raise ValueError(f"capacity must be >= 1, got {capacity}")
    if bounds is None:
        bounds = Rect.unit(dim)
    elif bounds.dim != dim and dim != 2:
        raise ValueError(
            f"bounds dimension {bounds.dim} conflicts with dim={dim}"
        )
    if max_depth is not None and max_depth < 0:
        raise ValueError(f"max_depth must be >= 0, got {max_depth}")
    dim = bounds.dim
    if arr.shape[2] != dim:
        raise ValueError(
            f"points have dimension {arr.shape[2]}, expected {dim}"
        )
    if dim > _CODE_BITS:
        raise ValueError(
            f"vector engine supports dim <= {_CODE_BITS}, got {dim}"
        )

    with obs.span("kernel.census_batch"):
        n = int(arr.shape[1])
        root_lo = np.asarray(bounds.lo.coords, dtype=np.float64)
        root_hi = np.asarray(bounds.hi.coords, dtype=np.float64)
        flat = arr.reshape(-1, dim)
        if flat.size:
            outside = ~((flat >= root_lo) & (flat < root_hi)).all(axis=1)
            if outside.any():
                p = Point(*flat[outside][0])
                raise ValueError(f"{p!r} outside tree bounds {bounds!r}")

        trial_chunks: List[np.ndarray] = []
        depth_chunks: List[np.ndarray] = []
        occ_chunks: List[np.ndarray] = []
        deep_jobs = _partition_batch(
            flat, n_trials, n, root_lo, root_hi, max_depth, capacity,
            trial_chunks, depth_chunks, occ_chunks,
        )
        # near-coincident groups that outran one code budget: finish
        # each with the scalar worklist, tagging its leaves by trial
        for trial, job in deep_jobs:
            pending = [job]
            before = len(depth_chunks)
            while pending:
                _partition_block(
                    *pending.pop(), capacity, depth_chunks, occ_chunks,
                    pending,
                )
            added = sum(c.size for c in depth_chunks[before:])
            trial_chunks.append(np.full(added, trial, dtype=np.int64))

        trials_arr = (
            np.concatenate(trial_chunks)
            if trial_chunks else np.empty(0, dtype=np.int64)
        )
        depths = (
            np.concatenate(depth_chunks)
            if depth_chunks else np.empty(0, dtype=np.int64)
        )
        occs = (
            np.concatenate(occ_chunks)
            if occ_chunks else np.empty(0, dtype=np.int64)
        ).astype(np.int64)
        if obs.enabled():
            obs.count("kernel.census", n_trials)
            obs.count("kernel.batches")
            obs.count("kernel.points", int(flat.shape[0]))
            obs.count("kernel.leaves", int(depths.size))
            if deep_jobs:
                obs.count("kernel.deep_groups", len(deep_jobs))
        order = np.argsort(trials_arr, kind="stable")
        trials_sorted = trials_arr[order]
        bounds_idx = np.searchsorted(
            trials_sorted, np.arange(n_trials + 1)
        )
        return [
            LeafPartition(
                capacity=capacity,
                depths=depths[order[bounds_idx[t]:bounds_idx[t + 1]]],
                occupancies=occs[order[bounds_idx[t]:bounds_idx[t + 1]]],
            )
            for t in range(n_trials)
        ]


def _partition_batch(
    flat: np.ndarray,
    n_trials: int,
    n: int,
    root_lo: np.ndarray,
    root_hi: np.ndarray,
    max_depth: Optional[int],
    capacity: int,
    trial_chunks: List[np.ndarray],
    depth_chunks: List[np.ndarray],
    occ_chunks: List[np.ndarray],
) -> List[Tuple[int, Tuple]]:
    """One shared partition pass over every trial's points.

    Mirrors :func:`_partition_block` exactly, except the run state
    carries a per-run trial tag (runs never span trials: the initial
    runs are the per-trial slices of the flattened array, and splits
    only ever narrow a run).  Returns the deep-group jobs — rare
    near-coincident blocks needing a fresh code budget — as
    ``(trial, job)`` pairs for the caller to finish with the scalar
    worklist.
    """
    dim = int(root_lo.shape[0])
    fanout = 1 << dim
    all_trials = np.arange(n_trials, dtype=np.int64)
    # every trial has the same n and the same root, so the scalar
    # engine's pre-loop early-outs apply to the whole batch at once
    if (
        n <= capacity
        or (max_depth is not None and max_depth <= 0)
        or not _splittable(root_lo, root_hi)
    ):
        trial_chunks.append(all_trials)
        depth_chunks.append(np.zeros(n_trials, dtype=np.int64))
        occ_chunks.append(np.full(n_trials, n, dtype=np.int64))
        return []

    levels = _CODE_BITS // dim
    if max_depth is not None:
        levels = min(levels, max_depth)
    total = n_trials * n

    # -- codes: one descent for the whole batch ------------------------
    with obs.span("kernel.codes"):
        lo = np.repeat(root_lo[None, :], total, axis=0)
        hi = np.repeat(root_hi[None, :], total, axis=0)
        cells = np.zeros((total, dim), dtype=np.uint64)
        pin = np.full(total, levels + 1, dtype=np.int64)
        one = np.uint64(1)
        for level in range(levels):
            mid = (lo + hi) / 2.0
            stuck = ~((lo < mid) & (mid < hi)).all(axis=1)
            pin = np.where((pin > levels) & stuck, level, pin)
            geq = flat >= mid
            cells = (cells << one) | geq.astype(np.uint64)
            lo = np.where(geq, mid, lo)
            hi = np.where(geq, hi, mid)
        codes = interleave_many(cells, levels)

    # -- sort: one row-wise argsort orders every trial at once ---------
    with obs.span("kernel.sort"):
        order2d = np.argsort(
            codes.reshape(n_trials, n), axis=1, kind="stable"
        )
        order = (
            order2d + (all_trials * n)[:, None]
        ).reshape(-1)
        sorted_codes = codes[order]
        sorted_pin = pin[order]

    # -- partition: the splitting rule over every trial's runs ---------
    deep_jobs: List[Tuple[int, Tuple]] = []
    with obs.span("kernel.partition"):
        starts = all_trials * n
        stops = starts + n
        run_trial = all_trials.copy()
        depth = 0
        while starts.size:
            counts = stops - starts
            pinned = sorted_pin[starts] <= depth
            if max_depth is not None and depth >= max_depth:
                pinned = np.ones(starts.size, dtype=bool)
            if pinned.any():
                k = int(pinned.sum())
                trial_chunks.append(run_trial[pinned])
                depth_chunks.append(np.full(k, depth, dtype=np.int64))
                occ_chunks.append(counts[pinned])
                keep = ~pinned
                starts, stops = starts[keep], stops[keep]
                run_trial = run_trial[keep]
                if not starts.size:
                    break
            if depth == levels:
                sub_md = None if max_depth is None else max_depth - levels
                for s, e, t in zip(
                    starts.tolist(), stops.tolist(), run_trial.tolist()
                ):
                    idx = order[s:e]
                    deep_jobs.append((t, (
                        flat[idx],
                        lo[idx[0]].copy(),
                        hi[idx[0]].copy(),
                        sub_md,
                        levels,
                    )))
                break
            shift = np.uint64((levels - 1 - depth) * dim)
            mask = np.uint64(fanout - 1)
            pos = _multi_arange(starts, stops)
            digits = (sorted_codes[pos] >> shift) & mask
            group = np.repeat(np.arange(starts.size), stops - starts)
            new_run = np.empty(pos.size, dtype=bool)
            new_run[0] = True
            new_run[1:] = (digits[1:] != digits[:-1]) | (
                group[1:] != group[:-1]
            )
            run_heads = np.flatnonzero(new_run)
            run_counts = np.diff(np.append(run_heads, pos.size))
            run_starts = pos[run_heads]
            new_trial = run_trial[group[run_heads]]
            occupied = np.bincount(group[run_heads], minlength=starts.size)
            empties = fanout - occupied
            n_empty = int(empties.sum())
            if n_empty:
                trial_chunks.append(np.repeat(run_trial, empties))
                depth_chunks.append(
                    np.full(n_empty, depth + 1, dtype=np.int64)
                )
                occ_chunks.append(np.zeros(n_empty, dtype=np.int64))
            resolved = run_counts <= capacity
            if resolved.any():
                trial_chunks.append(new_trial[resolved])
                depth_chunks.append(
                    np.full(
                        int(resolved.sum()), depth + 1, dtype=np.int64
                    )
                )
                occ_chunks.append(run_counts[resolved])
            starts = run_starts[~resolved]
            stops = starts + run_counts[~resolved]
            run_trial = new_trial[~resolved]
            depth += 1
    return deep_jobs


def _multi_arange(starts: np.ndarray, stops: np.ndarray) -> np.ndarray:
    """Concatenation of ``arange(s, e)`` for each pair, vectorized."""
    lengths = stops - starts
    total = int(lengths.sum())
    steps = np.ones(total, dtype=np.int64)
    steps[0] = starts[0]
    heads = np.cumsum(lengths)[:-1]
    steps[heads] = starts[1:] - (stops[:-1] - 1)
    return np.cumsum(steps)
