"""The write-ahead log — acknowledged mutations survive SIGKILL.

The page file underneath the served tree is *checkpoint-durable*: its
on-disk image only advances when :meth:`PageFile.checkpoint` publishes
a complete new snapshot, so a crash loses everything since the last
checkpoint.  The WAL closes that window.  Every mutation is appended
(and fsynced, in group-commit batches — see
:class:`~repro.service.server.SpatialIndexServer`) *before* it is
applied or acknowledged; on startup the log is replayed on top of the
checkpoint it extends.

On-disk layout::

    header : magic "RPROWL01" | generation u64 | dim u16 | crc32 u32
    record : length u32 | crc32(payload) u32 | payload
    payload: op u8 (1=insert, 2=delete) | dim * f64 coordinates

``generation`` names the checkpoint this log extends — the page file
stores the matching number in its metadata, so recovery can tell a log
that belongs to the current image from a stale one left behind by a
crash between checkpoint publication and log rotation (the stale log's
records are already *in* the checkpoint and must not replay twice).

A torn tail — the final record cut short or failing its checksum,
exactly what a crash mid-``write`` leaves — is normal, not corruption:
:meth:`WriteAheadLog.open` truncates the file back to the last intact
record and replays cleanly.  By the group-commit contract a torn
record was never acknowledged, so dropping it loses nothing the client
was promised.
"""

from __future__ import annotations

import os
import struct
import tempfile
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import List, Tuple, Union

from .. import obs
from ..geometry import Point

WAL_MAGIC = b"RPROWL01"
_WAL_HEADER = struct.Struct("<8sQH")
_CRC = struct.Struct("<I")
_RECORD_PREFIX = struct.Struct("<II")

OP_INSERT = 1
OP_DELETE = 2
_OP_NAMES = {OP_INSERT: "insert", OP_DELETE: "delete"}


class WalError(RuntimeError):
    """The log is unusable (bad magic, unreadable header, ...)."""


@dataclass(frozen=True)
class WalRecord:
    """One durable mutation: an insert or delete of a point."""

    op: int
    point: Point

    @property
    def op_name(self) -> str:
        """``"insert"`` or ``"delete"``."""
        return _OP_NAMES[self.op]


class WriteAheadLog:
    """An append-only mutation log with explicit group-commit syncs.

    :meth:`append` buffers a record in the OS file buffer;
    :meth:`sync` makes everything appended so far durable with one
    ``fsync``.  The server batches many appends per sync — that is the
    group commit, and the reason a single fsync's latency amortizes
    over a whole batch of acknowledged writes.
    """

    def __init__(self, path: Path, handle, generation: int, dim: int):
        self._path = path
        self._file = handle
        self._generation = generation
        self._dim = dim
        self._point_struct = struct.Struct(f"<{dim}d")
        self._appended = 0
        self._unsynced = 0
        self._closed = False

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def create(
        cls, path: Union[str, Path], generation: int, dim: int
    ) -> "WriteAheadLog":
        """Atomically create (or replace) the log at ``path`` holding
        only a header for ``generation``, and open it for appending.

        Replacing is deliberate: checkpoint rotation installs the new
        empty log *over* the old one in one ``os.replace``, so a crash
        at any instant leaves either the full old log or the fresh new
        one, never a partial hybrid.
        """
        path = Path(path)
        if dim < 1 or dim > 64:
            raise ValueError(f"dim must be in 1..64, got {dim}")
        if generation < 0:
            raise ValueError(f"generation must be >= 0, got {generation}")
        fixed = _WAL_HEADER.pack(WAL_MAGIC, generation, dim)
        header = fixed + _CRC.pack(zlib.crc32(fixed))
        fd, tmp_name = tempfile.mkstemp(
            prefix=path.name, suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(header)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        handle = open(path, "r+b")
        handle.seek(0, os.SEEK_END)
        return cls(path, handle, generation, dim)

    @classmethod
    def open(
        cls, path: Union[str, Path]
    ) -> Tuple["WriteAheadLog", List[WalRecord]]:
        """Open an existing log, returning it plus its intact records.

        The scan stops at the first torn or checksum-failing record —
        the unacknowledged tail a crash leaves — and truncates the file
        there so new appends start at a clean boundary.
        """
        path = Path(path)
        handle = open(path, "r+b")
        try:
            fixed = handle.read(_WAL_HEADER.size)
            if len(fixed) < _WAL_HEADER.size:
                raise WalError(f"truncated WAL header in {path}")
            magic, generation, dim = _WAL_HEADER.unpack(fixed)
            if magic != WAL_MAGIC:
                raise WalError(f"{path} is not a repro WAL (bad magic)")
            crc_bytes = handle.read(_CRC.size)
            if len(crc_bytes) < _CRC.size or \
                    _CRC.unpack(crc_bytes)[0] != zlib.crc32(fixed):
                raise WalError(f"WAL header checksum mismatch in {path}")
            if not 1 <= dim <= 64:
                raise WalError(f"WAL header claims dim={dim}")
            point_struct = struct.Struct(f"<{dim}d")
            payload_len = 1 + point_struct.size
            records: List[WalRecord] = []
            valid_end = handle.tell()
            while True:
                prefix = handle.read(_RECORD_PREFIX.size)
                if len(prefix) < _RECORD_PREFIX.size:
                    break
                length, stored_crc = _RECORD_PREFIX.unpack(prefix)
                if length != payload_len:
                    break
                payload = handle.read(length)
                if len(payload) < length:
                    break
                if zlib.crc32(payload) != stored_crc:
                    break
                op = payload[0]
                if op not in _OP_NAMES:
                    break
                records.append(WalRecord(
                    op, Point(*point_struct.unpack_from(payload, 1))
                ))
                valid_end = handle.tell()
            handle.seek(valid_end)
            handle.truncate(valid_end)
        except BaseException:
            handle.close()
            raise
        wal = cls(path, handle, generation, dim)
        wal._appended = len(records)
        return wal, records

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------

    @property
    def path(self) -> Path:
        """Where the log lives."""
        return self._path

    @property
    def generation(self) -> int:
        """The checkpoint generation this log extends."""
        return self._generation

    @property
    def dim(self) -> int:
        """Point dimensionality of the records."""
        return self._dim

    @property
    def record_count(self) -> int:
        """Records appended (including any replayed on open)."""
        return self._appended

    @property
    def unsynced(self) -> int:
        """Appends not yet covered by a :meth:`sync`."""
        return self._unsynced

    # ------------------------------------------------------------------
    # appending
    # ------------------------------------------------------------------

    def append(self, op: int, point: Point) -> None:
        """Buffer one mutation record (durable after the next
        :meth:`sync`)."""
        if self._closed:
            raise WalError("write-ahead log is closed")
        if op not in _OP_NAMES:
            raise ValueError(f"unknown WAL op {op}")
        if point.dim != self._dim:
            raise ValueError(
                f"point dimension {point.dim} != WAL dim {self._dim}"
            )
        payload = bytes([op]) + self._point_struct.pack(*point.coords)
        self._file.write(
            _RECORD_PREFIX.pack(len(payload), zlib.crc32(payload)) + payload
        )
        self._appended += 1
        self._unsynced += 1
        obs.count("service.wal.append")
        obs.count(
            "service.wal.appended_bytes", _RECORD_PREFIX.size + len(payload)
        )

    def sync(self) -> int:
        """Flush and ``fsync`` — the group commit.  Returns how many
        appends this call made durable."""
        if self._closed:
            raise WalError("write-ahead log is closed")
        batch = self._unsynced
        if batch:
            with obs.span("service.wal.sync"):
                self._file.flush()
                os.fsync(self._file.fileno())
            self._unsynced = 0
            obs.count("service.wal.sync_calls")
            obs.gauge("service.wal.group_size", float(batch))
        return batch

    def close(self) -> None:
        """Sync any buffered records and release the handle."""
        if self._closed:
            return
        if self._unsynced:
            self.sync()
        self._file.close()
        self._closed = True

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
