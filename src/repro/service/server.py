"""The spatial-index server — one writer task, group commit, snapshots.

:class:`SpatialIndexServer` serves a live
:class:`~repro.storage.paged_tree.PagedPRQuadtree` over asyncio TCP
(:mod:`~repro.service.protocol` frames, one
:class:`~repro.service.session.Session` per connection).

**Write path.**  All mutations funnel through one queue into a single
writer task.  The writer drains a batch (up to ``max_batch``, waiting
at most ``commit_interval`` for stragglers), appends every record to
the :class:`~repro.service.wal.WriteAheadLog`, makes the whole batch
durable with **one fsync** (the group commit), then applies it to the
tree and resolves the waiting acks.  Acknowledged means fsynced: a
SIGKILL at any instant loses nothing a client was told succeeded.

**Read path.**  Reads (``range`` / ``nearest`` / ``census`` / ``stat``)
run directly on the event loop.  The tree calls are synchronous and
the writer applies each batch without yielding, so every read observes
a batch boundary — never a half-applied batch.  That is the snapshot
contract: readers pin the current checkpoint ``generation`` (reported
back with ``census`` and ``stat``) while the writer advances it only
at atomic checkpoints.

**Checkpoints.**  Every ``checkpoint_every`` mutations (or on the
``checkpoint`` op) the server publishes a new page-file image via the
storage engine's write-temp-then-rename checkpoint, then atomically
rotates in a fresh WAL stamped with the new generation.  The ordering
makes every crash window safe — see :func:`open_state`, which walks
the same windows in reverse at startup.
"""

from __future__ import annotations

import asyncio
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from .. import obs
from ..geometry import Point
from ..storage.paged_tree import PagedPRQuadtree
from .monitor import DEFAULT_THRESHOLD, DriftMonitor, DriftSample
from .session import Session
from .telemetry import DEFAULT_SLOW_K, MetricsCursor, ServiceTelemetry
from .wal import OP_DELETE, OP_INSERT, WriteAheadLog

#: Page-file metadata key naming the checkpoint generation the image
#: captures; the WAL header stores the generation it extends.
GENERATION_KEY = "service_generation"

#: The WAL lives next to the page file it protects.
WAL_SUFFIX = ".wal"


class ServiceError(RuntimeError):
    """The serving layer cannot start or continue safely."""


def wal_path_for(path: Union[str, Path]) -> Path:
    """Where the WAL for the page file at ``path`` lives."""
    path = Path(path)
    return path.with_name(path.name + WAL_SUFFIX)


def open_state(
    path: Union[str, Path],
    create: bool = False,
    capacity: int = 4,
    dim: int = 2,
    page_size: int = 4096,
    pool_pages: int = 256,
    policy: str = "lru",
) -> Tuple[PagedPRQuadtree, WriteAheadLog, int]:
    """Open (or create) the durable server state at ``path``.

    Returns ``(tree, wal, replayed)`` where ``replayed`` counts WAL
    records applied on top of the checkpoint.  Recovery resolves every
    crash window the write path can leave:

    - *crash before checkpoint rename*: the old image plus a WAL of
      the same generation — replay everything (a torn final record was
      never acknowledged and is truncated away by the WAL open);
    - *crash after checkpoint rename, before WAL rotation*: a new
      image plus a **stale** WAL (generation behind the image) — every
      stale record is already inside the checkpoint, so the log is
      discarded, not replayed twice;
    - *crash after WAL rotation*: a new image plus a fresh empty log —
      nothing to do.

    A WAL generation *ahead* of the image cannot arise from this
    ordering and is refused as corruption.
    """
    path = Path(path)
    wal_path = wal_path_for(path)
    if not path.exists():
        if not create:
            raise FileNotFoundError(f"no page file at {path}")
        tree = PagedPRQuadtree.create(
            path, capacity=capacity, dim=dim, page_size=page_size,
            pool_pages=pool_pages, policy=policy,
        )
        try:
            tree.pagefile.update_meta({GENERATION_KEY: 0})
            tree.checkpoint()
            wal = WriteAheadLog.create(wal_path, 0, tree.dim)
        except BaseException:
            tree.close()
            raise
        return tree, wal, 0
    tree = PagedPRQuadtree.open(path, pool_pages=pool_pages, policy=policy)
    try:
        generation = int(tree.pagefile.meta.get(GENERATION_KEY, 0))
        if wal_path.exists():
            wal, records = WriteAheadLog.open(wal_path)
            if wal.dim != tree.dim:
                wal.close()
                raise ServiceError(
                    f"WAL dimension {wal.dim} != tree dimension {tree.dim}"
                )
            if wal.generation > generation:
                wal.close()
                raise ServiceError(
                    f"WAL generation {wal.generation} is ahead of the "
                    f"checkpoint ({generation}) — corrupt state"
                )
            if wal.generation == generation:
                replayed = 0
                with obs.span("service.recovery.replay"):
                    for record in records:
                        if record.op == OP_INSERT:
                            tree.insert(record.point)
                        else:
                            tree.delete(record.point)
                        replayed += 1
                obs.count("service.recovery.replayed", replayed)
                return tree, wal, replayed
            # stale log from a crash between checkpoint and rotation
            wal.close()
            obs.count("service.recovery.stale_wal_discarded")
        wal = WriteAheadLog.create(wal_path, generation, tree.dim)
    except BaseException:
        tree._file.close(checkpoint=False)
        raise
    return tree, wal, 0


class SpatialIndexServer:
    """Serves one paged tree; see the module docstring for semantics.

    Use :meth:`start` / :meth:`stop` (or :meth:`serve_forever`, which
    returns when a ``shutdown`` op or :meth:`request_shutdown`
    arrives).
    """

    def __init__(
        self,
        tree: PagedPRQuadtree,
        wal: WriteAheadLog,
        host: str = "127.0.0.1",
        port: int = 0,
        commit_interval: float = 0.002,
        max_batch: int = 512,
        checkpoint_every: int = 50_000,
        drift_every: int = 2_000,
        drift_threshold: float = DEFAULT_THRESHOLD,
        drift_sink=None,
        telemetry_interval: float = 1.0,
        telemetry_sink=None,
        slow_k: int = DEFAULT_SLOW_K,
    ):
        if commit_interval < 0:
            raise ValueError(
                f"commit_interval must be >= 0, got {commit_interval}"
            )
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        self._tree = tree
        self._wal = wal
        self._host = host
        self._port = port
        self._commit_interval = commit_interval
        self._max_batch = max_batch
        self._checkpoint_every = checkpoint_every
        self._drift_every = drift_every
        #: Called with every DriftSample taken (periodic, explicit, or
        #: stat-triggered) — how ``repro serve`` feeds the run
        #: database's alarms-over-time record.  Must not raise; the
        #: rundb ServeRecorder degrades to a warning internally.
        self._drift_sink = drift_sink
        self.monitor = DriftMonitor(tree, threshold=drift_threshold)
        #: Request identity + slow-op ring; sessions read this directly.
        self.telemetry = ServiceTelemetry(slow_k=slow_k)
        #: Seconds between periodic telemetry samples (pool hit rate,
        #: writer queue depth) — 0 disables the sampler task.
        self._telemetry_interval = telemetry_interval
        #: Called with the ambient tracer at every periodic sample —
        #: how ``repro serve`` feeds interval histogram/gauge rows into
        #: the run database.  Same contract as ``drift_sink``: must not
        #: raise (the rundb recorder degrades internally).
        self._telemetry_sink = telemetry_sink
        self._generation = wal.generation
        self._mutations_since_checkpoint = 0
        self._mutations_since_drift = 0
        self._last_drift: Optional[DriftSample] = None
        # holds (op, point, ack-future, phases) tuples; None is the
        # shutdown sentinel stop() appends after the last accepted
        # mutation.  ``phases`` is an optional per-request breakdown
        # dict _commit_batch fills for the slow-op ring.
        self._queue: "asyncio.Queue[Optional[Tuple[int, Point, asyncio.Future, Optional[Dict[str, float]]]]]" = \
            asyncio.Queue()
        self._server: Optional[asyncio.AbstractServer] = None
        self._writer_task: Optional[asyncio.Task] = None
        self._sampler_task: Optional[asyncio.Task] = None
        self._stop_event = asyncio.Event()
        self._started_at = 0.0
        self._closed = False
        self.sessions = 0
        self.total_sessions = 0
        self.op_counts: Dict[str, int] = {}
        self.protocol_errors = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind the listening socket and start the writer task."""
        if self._server is not None:
            raise ServiceError("server already started")
        self._server = await asyncio.start_server(
            self._on_connection, self._host, self._port
        )
        self._started_at = time.monotonic()
        self._writer_task = asyncio.ensure_future(self._writer_loop())
        if self._telemetry_interval > 0:
            self._sampler_task = asyncio.ensure_future(self._sampler_loop())

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — useful after binding port 0."""
        if self._server is None or not self._server.sockets:
            raise ServiceError("server is not listening")
        return self._server.sockets[0].getsockname()[:2]

    @property
    def generation(self) -> int:
        """The current checkpoint generation."""
        return self._generation

    @property
    def tree(self) -> PagedPRQuadtree:
        """The served tree (event-loop use only)."""
        return self._tree

    def request_shutdown(self) -> None:
        """Ask :meth:`serve_forever` to return (idempotent)."""
        self._stop_event.set()

    async def serve_forever(self) -> None:
        """Serve until a shutdown request, then stop cleanly."""
        if self._server is None:
            await self.start()
        try:
            await self._stop_event.wait()
        finally:
            await self.stop()

    async def stop(self) -> None:
        """Stop accepting, drain the write queue, checkpoint, close."""
        if self._closed:
            return
        self._closed = True  # enqueue_mutation refuses from here on
        if self._sampler_task is not None:
            self._sampler_task.cancel()
            try:
                await self._sampler_task
            except asyncio.CancelledError:
                pass
            self._sampler_task = None
        self.sample_telemetry()  # one last gauge sample before close
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._writer_task is not None:
            # a sentinel is FIFO-last behind every queued mutation, so
            # the writer commits everything pending and exits cleanly
            self._queue.put_nowait(None)
            await self._writer_task
        self._checkpoint()
        self._wal.close()
        self._tree.close()

    # ------------------------------------------------------------------
    # the write path
    # ------------------------------------------------------------------

    def enqueue_mutation(
        self,
        op: int,
        point: Point,
        phases: Optional[Dict[str, float]] = None,
    ) -> "asyncio.Future":
        """Queue one mutation **synchronously**; the returned future
        resolves once it is durable *and* applied.  Enqueueing without
        awaiting is what lets a session fix one connection's mutation
        order at frame-receipt time while still batching many acks into
        one group commit.  Bounds violations surface as ``ValueError``
        here, before anything touches the log.

        ``phases``, when given, is filled by the commit with the
        request's span breakdown (``queue_s`` wait, the batch's shared
        ``wal_sync_s`` fsync, per-op ``apply_s``) — what the slow-op
        ring shows for a retained mutation."""
        if op == OP_INSERT and not self._tree.bounds.contains_point(point):
            raise ValueError(
                f"point {list(point.coords)} outside tree bounds"
            )
        if self._closed:
            raise ServiceError("server is shutting down")
        if phases is not None:
            phases["_enqueued_at"] = time.perf_counter()
        future: asyncio.Future = asyncio.get_event_loop().create_future()
        self._queue.put_nowait((op, point, future, phases))
        return future

    async def submit_mutation(self, op: int, point: Point) -> bool:
        """Queue one mutation and await its durable ack."""
        return await self.enqueue_mutation(op, point)

    async def _writer_loop(self) -> None:
        loop = asyncio.get_event_loop()
        while True:
            first = await self._queue.get()
            if first is None:  # shutdown sentinel, queue already drained
                return
            batch = [first]
            deadline = loop.time() + self._commit_interval
            stopping = False
            while len(batch) < self._max_batch:
                remaining = deadline - loop.time()
                if remaining <= 0 and self._queue.empty():
                    break
                try:
                    item = await asyncio.wait_for(
                        self._queue.get(), max(remaining, 0.0)
                    )
                except asyncio.TimeoutError:
                    break
                if item is None:
                    stopping = True
                    break
                batch.append(item)
            self._commit_batch(batch)
            if stopping:
                return

    def _commit_batch(
        self, batch: List[Tuple[int, Point, asyncio.Future, Optional[Dict[str, float]]]]
    ) -> None:
        """WAL-append + one fsync, then apply and ack.  Synchronous on
        purpose: no await between the first apply and the last ack, so
        readers never observe a half-applied batch."""
        began = time.perf_counter()
        obs.gauge("service.writer.queue_depth", float(self._queue.qsize()))
        for op, point, _, _ in batch:
            self._wal.append(op, point)
        appended = time.perf_counter()
        self._wal.sync()  # the group commit — one fsync for the batch
        # the fsync latency histogram proper lives under the
        # ``service.wal.sync`` span; this local measure feeds the
        # per-request phase breakdowns below
        sync_s = time.perf_counter() - appended
        for op, point, future, phases in batch:
            if phases is not None:
                apply_began = time.perf_counter()
            if op == OP_INSERT:
                result = self._tree.insert(point)
            else:
                result = self._tree.delete(point)
            if phases is not None:
                enqueued = phases.pop("_enqueued_at", began)
                phases["queue_s"] = max(began - enqueued, 0.0)
                # the fsync is shared by the whole batch, but it is the
                # wait every op in it experienced — report it verbatim
                phases["wal_sync_s"] = sync_s
                phases["apply_s"] = time.perf_counter() - apply_began
            if not future.cancelled():
                future.set_result(result)
        obs.record("service.commit_batch", time.perf_counter() - began)
        obs.count("service.commits")
        obs.gauge("service.commit_batch_size", float(len(batch)))
        self._mutations_since_checkpoint += len(batch)
        self._mutations_since_drift += len(batch)
        if self._mutations_since_drift >= self._drift_every:
            self._mutations_since_drift = 0
            self._sample_drift()
        if self._mutations_since_checkpoint >= self._checkpoint_every:
            self._checkpoint()

    def _checkpoint(self) -> int:
        """Publish a new atomic checkpoint and rotate the WAL.

        Ordering is the whole durability argument: (1) the WAL is
        synced, so nothing uncommitted rides into the image; (2) the
        page file publishes generation g+1 via atomic rename; (3) the
        WAL is atomically replaced by an empty log stamped g+1.  A
        crash between (2) and (3) leaves a stale WAL that
        :func:`open_state` recognizes by its old generation.
        """
        with obs.span("service.checkpoint"):
            self._wal.sync()
            next_generation = self._generation + 1
            self._tree.pagefile.update_meta({
                GENERATION_KEY: next_generation,
                "points": len(self._tree),
            })
            self._tree.pool.flush()
            self._tree.pool.observe_gauges()
            self._tree.pagefile.checkpoint()
            wal_path = self._wal.path
            self._wal.close()
            self._wal = WriteAheadLog.create(
                wal_path, next_generation, self._tree.dim
            )
            self._generation = next_generation
            self._mutations_since_checkpoint = 0
        obs.count("service.checkpoints")
        return self._generation

    # ------------------------------------------------------------------
    # connections and reporting
    # ------------------------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        await Session(self, reader, writer).run()

    async def _sampler_loop(self) -> None:
        """Periodic telemetry sampling, so gauges like the buffer
        pool's hit rate are a *time series* over the run instead of one
        close-time scalar."""
        while True:
            await asyncio.sleep(self._telemetry_interval)
            self.sample_telemetry()

    def sample_telemetry(self) -> None:
        """Take one telemetry sample now: pool-health gauges, writer
        queue depth, and a flush through the telemetry sink."""
        self._tree.pool.observe_gauges()
        obs.gauge("service.writer.queue_depth", float(self._queue.qsize()))
        if self._telemetry_sink is not None:
            self._telemetry_sink(obs.active_tracer())

    def metrics(self, cursor: MetricsCursor) -> Dict[str, Any]:
        """The ``metrics`` op's payload: everything that changed since
        ``cursor``'s previous poll, plus the slow-op ring.

        Counters and histograms are **deltas** (cursor-relative, so
        each polling connection sees its own complete stream); gauges
        are reported cumulatively — "current value plus lifetime
        envelope" is what a gauge means.  Histogram deltas carry their
        sparse buckets, so a poller can merge successive polls and
        recover the server's cumulative distribution exactly.
        """
        out: Dict[str, Any] = {
            "seq": cursor.advance(),
            "uptime_s": (
                time.monotonic() - self._started_at
                if self._started_at else 0.0
            ),
            "requests": self.telemetry.requests,
            "ops": dict(self.op_counts),
            "queue_depth": self._queue.qsize(),
            "pool_hit_rate": self._tree.pool.hit_rate,
            "counters": {},
            "gauges": {},
            "histograms": {},
            "slow_ops": self.telemetry.ring.to_list(),
            "slow_ops_evicted": self.telemetry.ring.evicted,
        }
        tracer = obs.active_tracer()
        if tracer is not None:
            out["counters"] = cursor.counter_deltas(tracer.counters)
            out["gauges"] = {
                name: stats.to_dict()
                for name, stats in sorted(tracer.gauges.items())
                if name.startswith(("service.", "storage.pool."))
            }
            histograms = dict(tracer.span_histograms)
            histograms.update(tracer.gauge_histograms)
            out["histograms"] = cursor.histogram_deltas(histograms)
        return out

    def _sample_drift(self) -> DriftSample:
        """One monitor sample: cached for ``stat``, forwarded to the
        drift sink.  Every sampling path funnels through here so the
        recorded history matches what the gauges saw."""
        self._last_drift = self.monitor.sample()
        if self._drift_sink is not None:
            self._drift_sink(self._last_drift)
        return self._last_drift

    def drift(self) -> DriftSample:
        """Sample the drift monitor now (also refreshes ``stat``'s
        cached view)."""
        return self._sample_drift()

    def stat(self) -> Dict[str, Any]:
        """The ``stat`` op's payload: tree shape, service counters,
        drift, and per-op latency percentiles when a tracer is on."""
        tree_stats = self._tree.stats()
        drift = self._last_drift or self._sample_drift()
        out: Dict[str, Any] = {
            "points": len(self._tree),
            "pages": tree_stats["leaf_pages"],
            "capacity": self._tree.capacity,
            "dim": self._tree.dim,
            "bounds": [
                list(self._tree.bounds.lo.coords),
                list(self._tree.bounds.hi.coords),
            ],
            "generation": self._generation,
            "uptime_s": (
                time.monotonic() - self._started_at
                if self._started_at else 0.0
            ),
            "sessions": self.sessions,
            "total_sessions": self.total_sessions,
            "ops": dict(self.op_counts),
            "protocol_errors": self.protocol_errors,
            "wal_records": self._wal.record_count,
            "mutations_since_checkpoint": self._mutations_since_checkpoint,
            "pool": tree_stats["pool"],
            "drift": drift.to_dict(),
        }
        tracer = obs.active_tracer()
        if tracer is not None:
            latencies: Dict[str, Dict[str, float]] = {}
            for name, hist in tracer.span_histograms.items():
                if name.startswith("service.op.") and hist.count:
                    latencies[name[len("service.op."):]] = {
                        "count": hist.count,
                        "p50_ms": hist.p50 * 1e3,
                        "p99_ms": hist.p99 * 1e3,
                    }
            if latencies:
                out["latency_ms"] = latencies
        return out
