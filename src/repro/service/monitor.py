"""Live capacity planning — the steady-state model watching the server.

:class:`~repro.core.planning.StoragePlanner` was built to *predict* a
page file's shape before building it; here it runs continuously
against the served tree.  Every sample compares

- the **page count** the size-exact statistical model expects at the
  current n against the file's live data-page count, and
- the **mean bucket occupancy** the steady-state solution of
  ``e·T = a·e`` predicts against the census's observed mean,

and records both relative errors as gauges
(``service.drift.page_error`` / ``service.drift.occupancy_error``).
When either error magnitude crosses the alarm threshold the sample is
flagged and ``service.drift.alarms`` counts it — the signal that the
served population has left the regime the paper's model describes
(hotspot concentration, adversarial clustering, or a bug in the
serving path itself).

Below ``min_points`` no alarm fires: the model's predictions are
asymptotic, and a nearly empty tree legitimately sits far from the
fixed point (the planner's ``warmup_insertions`` quantifies how far).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

from .. import obs
from ..core.fagin import expected_total_leaves
from ..core.planning import MAX_PLANNED_CAPACITY, StoragePlanner

#: Default relative-error magnitude that raises the alarm.  The model
#: tracks healthy uniform/Gaussian populations within a few percent;
#: 25% of drift means the population no longer looks like anything the
#: steady state describes.
DEFAULT_THRESHOLD = 0.25

#: Default minimum population before alarms arm.
DEFAULT_MIN_POINTS = 256


@dataclass(frozen=True)
class DriftSample:
    """One prediction-vs-reality measurement of the served tree."""

    n_points: int
    capacity: int
    predicted_pages: float
    actual_pages: int
    predicted_occupancy: float
    observed_occupancy: float
    alarm: bool
    armed: bool

    @property
    def page_error(self) -> float:
        """Relative page-count error: ``(predicted - actual) / actual``."""
        if self.actual_pages == 0:
            return 0.0
        return (self.predicted_pages - self.actual_pages) / self.actual_pages

    @property
    def occupancy_error(self) -> float:
        """Relative mean-occupancy error against the steady state."""
        if self.observed_occupancy == 0.0:
            return 0.0
        return (
            (self.predicted_occupancy - self.observed_occupancy)
            / self.observed_occupancy
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (what ``stat`` responses carry)."""
        return {
            "n_points": self.n_points,
            "capacity": self.capacity,
            "predicted_pages": self.predicted_pages,
            "actual_pages": self.actual_pages,
            "page_error": self.page_error,
            "predicted_occupancy": self.predicted_occupancy,
            "observed_occupancy": self.observed_occupancy,
            "occupancy_error": self.occupancy_error,
            "armed": self.armed,
            "alarm": self.alarm,
        }


class DriftMonitor:
    """Watches one served tree for divergence from the model.

    Parameters
    ----------
    tree:
        The live :class:`~repro.storage.paged_tree.PagedPRQuadtree`.
    threshold:
        Alarm when ``|error|`` of either drift signal exceeds this.
    min_points:
        Population below which alarms stay disarmed.
    """

    def __init__(
        self,
        tree,
        threshold: float = DEFAULT_THRESHOLD,
        min_points: int = DEFAULT_MIN_POINTS,
    ):
        if threshold <= 0:
            raise ValueError(f"threshold must be > 0, got {threshold}")
        if min_points < 0:
            raise ValueError(f"min_points must be >= 0, got {min_points}")
        self._tree = tree
        self._threshold = threshold
        self._min_points = min_points
        self._planner = StoragePlanner(buckets=tree.fanout)
        self._alarms = 0
        self._samples = 0
        self._modeled = tree.capacity <= MAX_PLANNED_CAPACITY

    @property
    def threshold(self) -> float:
        """Alarm threshold on relative-error magnitude."""
        return self._threshold

    @property
    def alarm_count(self) -> int:
        """Samples that raised the alarm so far."""
        return self._alarms

    @property
    def sample_count(self) -> int:
        """Samples taken so far."""
        return self._samples

    def sample(self) -> DriftSample:
        """Measure drift now, record the gauges, maybe raise the alarm.

        The census walk is O(pages) through the buffer pool — cheap at
        serving sizes, but the server still samples on a period rather
        than per operation.
        """
        tree = self._tree
        n = len(tree)
        capacity = tree.capacity
        actual_pages = tree.pagefile.data_page_count
        census = tree.occupancy_census()
        observed_occ = census.average_occupancy()
        if self._modeled:
            predicted_pages = expected_total_leaves(
                n, capacity, buckets=tree.fanout, model="exact"
            )
            predicted_occ = (
                n / predicted_pages if predicted_pages > 0 else 0.0
            )
        else:  # capacity beyond the planner's calibrated range
            predicted_pages = float(actual_pages)
            predicted_occ = observed_occ
        armed = self._modeled and n >= self._min_points
        sample = DriftSample(
            n_points=n,
            capacity=capacity,
            predicted_pages=predicted_pages,
            actual_pages=actual_pages,
            predicted_occupancy=predicted_occ,
            observed_occupancy=observed_occ,
            armed=armed,
            alarm=armed and (
                abs(_safe_error(predicted_pages, actual_pages))
                > self._threshold
                or abs(_safe_error(predicted_occ, observed_occ))
                > self._threshold
            ),
        )
        self._samples += 1
        obs.gauge("service.drift.page_error", sample.page_error)
        obs.gauge("service.drift.occupancy_error", sample.occupancy_error)
        # the headline scalar: worst relative-error magnitude this
        # sample — what `repro db trend --gauge planner.drift` tracks
        obs.gauge(
            "planner.drift",
            max(abs(sample.page_error), abs(sample.occupancy_error)),
        )
        obs.count("service.drift.samples")
        if sample.alarm:
            self._alarms += 1
            obs.count("service.drift.alarms")
        return sample


def _safe_error(predicted: float, actual: float) -> float:
    if actual == 0:
        return 0.0
    return (predicted - actual) / actual
