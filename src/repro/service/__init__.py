"""The serving layer — a durable async spatial-index server.

The paper's steady state (``e·T = a·e``) describes a *live* population
under insert/delete traffic; this package serves one.  An asyncio TCP
server (:mod:`~repro.service.server`) exposes ``insert`` / ``delete`` /
``range`` / ``nearest`` / ``census`` / ``stat`` over a
:class:`~repro.storage.paged_tree.PagedPRQuadtree`, made durable by a
write-ahead log with group commit (:mod:`~repro.service.wal`) replayed
on startup against the page file's last atomic checkpoint.  A
:class:`~repro.service.monitor.DriftMonitor` watches observed page
occupancy against the steady-state prediction, and
:mod:`~repro.service.loadgen` replays seeded
:class:`~repro.workloads.ChurnWorkload` traces at a target QPS.

``python -m repro serve start|stat|load|stop`` drives it all — see
:mod:`~repro.service.cli`.
"""

from .protocol import (
    MAX_FRAME_BYTES,
    FrameTooLargeError,
    ProtocolError,
    encode_frame,
    read_frame,
    write_frame,
)
from .wal import WalRecord, WriteAheadLog
from .monitor import DriftMonitor, DriftSample
from .server import (
    ServiceError,
    SpatialIndexServer,
    open_state,
    wal_path_for,
)
from .loadgen import LoadReport, run_load

__all__ = [
    "DriftMonitor",
    "DriftSample",
    "FrameTooLargeError",
    "LoadReport",
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "ServiceError",
    "SpatialIndexServer",
    "WalRecord",
    "WriteAheadLog",
    "encode_frame",
    "open_state",
    "read_frame",
    "run_load",
    "wal_path_for",
    "write_frame",
]
