"""The serving layer — a durable async spatial-index server.

The paper's steady state (``e·T = a·e``) describes a *live* population
under insert/delete traffic; this package serves one.  An asyncio TCP
server (:mod:`~repro.service.server`) exposes ``insert`` / ``delete`` /
``range`` / ``nearest`` / ``census`` / ``stat`` over a
:class:`~repro.storage.paged_tree.PagedPRQuadtree`, made durable by a
write-ahead log with group commit (:mod:`~repro.service.wal`) replayed
on startup against the page file's last atomic checkpoint.  A
:class:`~repro.service.monitor.DriftMonitor` watches observed page
occupancy against the steady-state prediction, and
:mod:`~repro.service.loadgen` replays seeded
:class:`~repro.workloads.ChurnWorkload` traces at a target QPS.

The live telemetry plane rides on top
(:mod:`~repro.service.telemetry`): every request gets a server-side
request ID and args digest, the slowest land in a bounded
:class:`~repro.service.telemetry.SlowOpRing` with their span
breakdowns, and the ``metrics`` wire op returns counter/histogram
*deltas* since each connection's previous poll — what
``repro serve top`` renders live and CI gates on.

``python -m repro serve start|stat|top|load|stop`` drives it all —
see :mod:`~repro.service.cli`.
"""

from .protocol import (
    MAX_FRAME_BYTES,
    FrameTooLargeError,
    ProtocolError,
    encode_frame,
    read_frame,
    write_frame,
)
from .wal import WalRecord, WriteAheadLog
from .monitor import DriftMonitor, DriftSample
from .server import (
    ServiceError,
    SpatialIndexServer,
    open_state,
    wal_path_for,
)
from .loadgen import LoadReport, run_load
from .telemetry import (
    DEFAULT_SLOW_K,
    METRIC_PREFIXES,
    MetricsCursor,
    ServiceTelemetry,
    SlowOp,
    SlowOpRing,
    args_digest,
)

__all__ = [
    "DEFAULT_SLOW_K",
    "DriftMonitor",
    "DriftSample",
    "FrameTooLargeError",
    "LoadReport",
    "MAX_FRAME_BYTES",
    "METRIC_PREFIXES",
    "MetricsCursor",
    "ProtocolError",
    "ServiceError",
    "ServiceTelemetry",
    "SlowOp",
    "SlowOpRing",
    "SpatialIndexServer",
    "WalRecord",
    "WriteAheadLog",
    "args_digest",
    "encode_frame",
    "open_state",
    "read_frame",
    "run_load",
    "wal_path_for",
    "write_frame",
]
