"""The wire protocol — length-prefixed JSON frames.

One frame is a 4-byte big-endian unsigned payload length followed by
that many bytes of UTF-8 JSON.  Requests and responses are JSON
objects; the server echoes each request's ``id`` so clients may
pipeline many requests per connection and match responses out of band.

Request shape::

    {"id": 7, "op": "insert", "point": [0.25, 0.75]}

Response shape::

    {"id": 7, "ok": true, "result": true}
    {"id": 7, "ok": false, "error": "point [2.0, 2.0] outside bounds"}

Operations (the server's dispatch table lives in
:mod:`~repro.service.session`):

===========  =======================================  ==================
op           request fields                           result
===========  =======================================  ==================
``insert``   ``point`` (list of floats)               ``true`` if new
``delete``   ``point``                                ``true`` if removed
``range``    ``lo``, ``hi`` (box corners)             list of points
``nearest``  ``point``, optional ``k`` (default 1)    list of points
``census``   optional nothing                         occupancy counts
``stat``     —                                        server stats dict
``metrics``  —                                        counter/histogram
                                                      deltas since this
                                                      connection's last
                                                      poll + slow-op
                                                      ring
``ping``     —                                        ``"pong"``
``checkpoint``  —                                     new generation
``shutdown`` —                                        ``true`` (then EOF)
===========  =======================================  ==================

The codec is symmetric and tiny on purpose: JSON keeps the protocol
inspectable (``nc`` + a hex length prefix talks to the server), and the
frame length bound keeps a malicious or confused peer from ballooning
the server's read buffer.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any, Dict, Optional

#: Frame length prefix: 4-byte big-endian unsigned.
_LENGTH = struct.Struct(">I")

#: Hard bound on one frame's JSON payload.  A range query over the
#: whole tree can be large, so this is generous — but bounded.
MAX_FRAME_BYTES = 8 * 1024 * 1024


class ProtocolError(RuntimeError):
    """The peer sent bytes that do not decode to a protocol frame."""


class FrameTooLargeError(ProtocolError):
    """A frame's declared length exceeds :data:`MAX_FRAME_BYTES`."""


def encode_frame(message: Dict[str, Any]) -> bytes:
    """Serialize one message to its on-wire bytes (prefix + JSON)."""
    payload = json.dumps(
        message, separators=(",", ":"), sort_keys=True
    ).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameTooLargeError(
            f"frame of {len(payload)} bytes exceeds {MAX_FRAME_BYTES}"
        )
    return _LENGTH.pack(len(payload)) + payload


def decode_payload(payload: bytes) -> Dict[str, Any]:
    """Decode one frame payload; the top level must be a JSON object."""
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"frame payload is not valid JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame payload must be a JSON object, got {type(message).__name__}"
        )
    return message


async def read_frame(
    reader: asyncio.StreamReader,
) -> Optional[Dict[str, Any]]:
    """Read one frame; ``None`` on clean EOF at a frame boundary.

    Raises :class:`ProtocolError` on a truncated frame (EOF mid-frame)
    or undecodable payload, :class:`FrameTooLargeError` on an oversized
    length prefix (the bytes are *not* read — the caller should drop
    the connection).
    """
    try:
        prefix = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid length prefix") from exc
    (length,) = _LENGTH.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise FrameTooLargeError(
            f"peer declared a {length}-byte frame (max {MAX_FRAME_BYTES})"
        )
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            f"connection closed mid frame ({len(exc.partial)} of "
            f"{length} bytes)"
        ) from exc
    return decode_payload(payload)


async def write_frame(
    writer: asyncio.StreamWriter, message: Dict[str, Any]
) -> None:
    """Encode and send one message, draining the transport buffer."""
    writer.write(encode_frame(message))
    await writer.drain()
