"""Per-connection protocol handling.

A :class:`Session` owns one client connection.  Frames are read in
arrival order; **mutations** are enqueued onto the server's single
writer synchronously at receipt (so one connection's inserts and
deletes apply in the order they were sent) and acknowledged from a
background task once their group commit lands, while **reads** execute
immediately against the last committed batch.  A client may therefore
pipeline many requests — that, not parallel connections, is how a
single client reaches thousands of ops per second through per-batch
fsync durability.  Responses carry the request's ``id`` and may
arrive out of order; a pipelined client that needs read-your-writes
awaits the mutation ack before issuing the read.

Every op is timed onto the ambient tracer as a ``service.op.<name>``
record (duration measured here, folded in with :func:`repro.obs.record`
rather than a ``span`` — spans nest on a stack, and interleaved
sessions on one event loop would corrupt it), so a traced server gets
p50/p99 per op type for free from the obs histograms.  On top of that
every request gets a server-side request ID and an args digest
(:mod:`~repro.service.telemetry`); the completed request is offered to
the server's slow-op ring with its span breakdown, and the ``metrics``
op reports counter/histogram *deltas* through this connection's own
:class:`~repro.service.telemetry.MetricsCursor`.  Frame writes
are safe from concurrent tasks: one frame is one synchronous
``write`` call, so frames never interleave on the wire.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Dict, List, Optional, Set

from .. import obs
from ..geometry import Point, Rect
from .protocol import ProtocolError, read_frame, write_frame
from .telemetry import MetricsCursor
from .wal import OP_DELETE, OP_INSERT

#: Ops a request may name; anything else is a client error.
KNOWN_OPS = (
    "insert", "delete", "range", "nearest", "census", "stat",
    "metrics", "ping", "checkpoint", "shutdown",
)

_MUTATIONS = {"insert": OP_INSERT, "delete": OP_DELETE}


class RequestError(ValueError):
    """A malformed or unserviceable request (reported to the client,
    connection stays up)."""


def _parse_point(value: Any, dim: int, field: str = "point") -> Point:
    if not isinstance(value, (list, tuple)) or not value:
        raise RequestError(f"'{field}' must be a non-empty coordinate list")
    try:
        point = Point(*[float(c) for c in value])
    except (TypeError, ValueError) as exc:
        raise RequestError(f"'{field}' holds a non-numeric coordinate") from exc
    if point.dim != dim:
        raise RequestError(
            f"'{field}' has {point.dim} coordinates; the tree is {dim}-d"
        )
    return point


def _points_payload(points: List[Point]) -> List[List[float]]:
    return [list(p.coords) for p in points]


class Session:
    """One connection's read-dispatch-respond loop."""

    def __init__(
        self,
        server,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ):
        self._server = server
        self._reader = reader
        self._writer = writer
        self._ops = 0
        self._acks: Set[asyncio.Task] = set()
        # per-connection delta state for the ``metrics`` op: each
        # polling client sees its own complete counter/histogram stream
        self._metrics_cursor = MetricsCursor()

    async def run(self) -> None:
        server = self._server
        server.sessions += 1
        server.total_sessions += 1
        obs.count("service.connections")
        try:
            while True:
                try:
                    request = await read_frame(self._reader)
                except ProtocolError:
                    # undecodable peer: nothing sane to answer, drop it
                    server.protocol_errors += 1
                    obs.count("service.protocol_errors")
                    break
                if request is None:
                    break
                stop = await self._respond(request)
                if stop:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            if self._acks:  # flush pending mutation acks before closing
                await asyncio.gather(*self._acks, return_exceptions=True)
            server.sessions -= 1
            obs.gauge("service.session_ops", float(self._ops))
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _respond(self, request: Dict[str, Any]) -> bool:
        """Handle one request; returns True when the connection should
        close (shutdown acked)."""
        request_id = request.get("id")
        op = request.get("op")
        name = op if op in KNOWN_OPS else "invalid"
        began = time.perf_counter()
        # server-side request identity: the id tags the slow-op ring
        # entry (span names must stay bounded, so tags live there).
        # The raw request stands in for its digest — telemetry hashes
        # it lazily, only for requests slow enough to be retained.
        rid = self._server.telemetry.next_request_id()
        digest = request
        if name in _MUTATIONS:
            phases: Dict[str, float] = {}
            try:
                point = _parse_point(request.get("point"), self._server.tree.dim)
                # synchronous enqueue: per-connection mutation order is
                # fixed here, the ack task only waits for durability
                future = self._server.enqueue_mutation(
                    _MUTATIONS[name], point, phases=phases
                )
            except (RequestError, ValueError) as exc:
                await self._send(
                    name, began,
                    {"id": request_id, "ok": False, "error": str(exc)},
                    failed=True, rid=rid, digest=digest,
                )
                return False
            task = asyncio.ensure_future(
                self._ack_mutation(
                    request_id, name, began, future, rid, digest, phases
                )
            )
            self._acks.add(task)
            task.add_done_callback(self._acks.discard)
            return False
        phases = {}
        try:
            if name == "invalid":
                raise RequestError(
                    f"unknown op {op!r} "
                    f"(expected one of {', '.join(KNOWN_OPS)})"
                )
            handler_began = time.perf_counter()
            result = self._dispatch_read(name, request)
            phases["handler_s"] = time.perf_counter() - handler_began
            response = {"id": request_id, "ok": True, "result": result}
            failed = False
        except (RequestError, ValueError) as exc:
            response = {"id": request_id, "ok": False, "error": str(exc)}
            failed = True
        await self._send(
            name, began, response, failed=failed,
            rid=rid, digest=digest, phases=phases,
        )
        return name == "shutdown" and not failed

    async def _ack_mutation(
        self,
        request_id: Any,
        name: str,
        began: float,
        future: "asyncio.Future",
        rid: int,
        digest: Any,
        phases: Dict[str, float],
    ) -> None:
        try:
            result = await future
            response = {"id": request_id, "ok": True, "result": result}
            failed = False
        except (RequestError, ValueError, RuntimeError) as exc:
            response = {"id": request_id, "ok": False, "error": str(exc)}
            failed = True
        try:
            await self._send(
                name, began, response, failed=failed,
                rid=rid, digest=digest, phases=phases,
            )
        except (ConnectionError, OSError):  # peer left before the ack
            obs.count("service.lost_acks")

    async def _send(
        self,
        name: str,
        began: float,
        response: Dict[str, Any],
        failed: bool = False,
        rid: Optional[int] = None,
        digest: Any = "",
        phases: Optional[Dict[str, float]] = None,
    ) -> None:
        elapsed = time.perf_counter() - began
        obs.record(f"service.op.{name}", elapsed)
        obs.count("service.ops")
        if failed:
            obs.count("service.op_errors")
        if rid is not None:
            self._server.telemetry.observe(rid, name, digest, elapsed, phases)
        self._server.op_counts[name] = \
            self._server.op_counts.get(name, 0) + 1
        self._ops += 1
        await write_frame(self._writer, response)

    def _dispatch_read(self, name: str, request: Dict[str, Any]) -> Any:
        server = self._server
        tree = server.tree
        if name == "range":
            lo = _parse_point(request.get("lo"), tree.dim, "lo")
            hi = _parse_point(request.get("hi"), tree.dim, "hi")
            return _points_payload(tree.range_search(Rect(lo, hi)))
        if name == "nearest":
            point = _parse_point(request.get("point"), tree.dim)
            k = request.get("k", 1)
            if not isinstance(k, int) or isinstance(k, bool) or k < 1:
                raise RequestError(
                    f"'k' must be a positive integer, got {k!r}"
                )
            return _points_payload(tree.nearest(point, k))
        if name == "census":
            census = tree.occupancy_census()
            return {
                "counts": list(census.counts),
                "capacity": tree.capacity,
                "points": len(tree),
                "pages": tree.leaf_count(),
                "mean_occupancy": census.average_occupancy(),
                "generation": server.generation,
            }
        if name == "stat":
            return server.stat()
        if name == "metrics":
            return server.metrics(self._metrics_cursor)
        if name == "ping":
            return "pong"
        if name == "checkpoint":
            # safe to run inline: the writer only commits between
            # awaits, and _commit_batch never yields mid-batch
            return server._checkpoint()
        if name == "shutdown":
            server.request_shutdown()
            return True
        raise RequestError(f"unhandled op {name!r}")  # pragma: no cover
