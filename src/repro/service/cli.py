"""``python -m repro serve`` — run and drive the spatial-index server.

Five subcommands:

- ``start PATH`` — open (or create) the durable state at ``PATH`` and
  serve it; runs until SIGINT/SIGTERM or a client's ``shutdown`` op.
  Tracing is on by default (``--no-trace`` opts out): per-op latency
  histograms, group-commit internals, and the slow-op ring are live
  from the first request, and — when a run database is configured —
  a :class:`~repro.rundb.ServeTelemetryRecorder` flushes interval
  metric samples every ``--telemetry-interval`` seconds.
  ``--trace-out`` writes the server's full tracer snapshot (span tree,
  per-op latency histograms, drift gauges) as JSON on exit — the file
  ``repro obs report|export`` consume;
- ``stat`` — connect and print the server's ``stat`` payload;
- ``top`` — poll the ``metrics`` op on an interval and render a live
  refreshing view: per-op latency percentiles (reconstructed by
  merging every poll's histogram deltas), queue depth, pool hit rate,
  and the slowest requests with their span breakdowns.
  ``--iterations`` bounds the polls (CI mode), ``--assert-ops`` /
  ``--require-p99-ms`` turn the final totals into a gate;
- ``load`` — replay a seeded churn trace at a target QPS
  (:mod:`~repro.service.loadgen`) and report achieved QPS + latency
  percentiles; exits nonzero if any op failed or the census check
  mismatched (CI's smoke gate);
- ``stop`` — send the ``shutdown`` op (a clean remote stop, so the
  server checkpoints and flushes its trace).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from ..obs import Histogram, Tracer, tracing
from ..storage.pagefile import StorageError
from .loadgen import LoadError, ServiceClient, run_load
from .server import ServiceError, SpatialIndexServer, open_state
from .telemetry import DEFAULT_SLOW_K
from .wal import WalError


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Serve a disk-backed PR quadtree over TCP.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    start = sub.add_parser(
        "start", help="serve the page file at PATH (created if missing)"
    )
    start.add_argument("path", help="page file to serve (WAL lives beside)")
    start.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: %(default)s)")
    start.add_argument("--port", type=int, default=7871,
                       help="bind port, 0 = ephemeral (default: %(default)s)")
    start.add_argument("--capacity", type=int, default=4,
                       help="bucket capacity m when creating "
                            "(default: %(default)s)")
    start.add_argument("--dim", type=int, default=2,
                       help="dimension when creating (default: %(default)s)")
    start.add_argument("--page-size", type=int, default=4096,
                       help="bytes per page when creating "
                            "(default: %(default)s)")
    start.add_argument("--pool-pages", type=int, default=256,
                       help="buffer pool frames (default: %(default)s)")
    start.add_argument("--preload", type=int, default=0, metavar="N",
                       help="when creating, bulk-load N seeded uniform "
                            "points into the file first (sorted one-pass "
                            "cold start; default: %(default)s)")
    start.add_argument("--preload-seed", type=int, default=1987,
                       help="RNG seed for --preload (default: %(default)s)")
    start.add_argument("--commit-interval", type=float, default=0.002,
                       help="max seconds a group commit waits for "
                            "stragglers (default: %(default)s)")
    start.add_argument("--max-batch", type=int, default=512,
                       help="max mutations per group commit "
                            "(default: %(default)s)")
    start.add_argument("--checkpoint-every", type=int, default=50000,
                       help="mutations between automatic checkpoints "
                            "(default: %(default)s)")
    start.add_argument("--drift-threshold", type=float, default=0.25,
                       help="drift-monitor alarm threshold "
                            "(default: %(default)s)")
    start.add_argument("--trace-out", default=None, metavar="PATH",
                       help="write the server's tracer snapshot (JSON) "
                            "here on shutdown")
    start.add_argument("--no-trace", action="store_true",
                       help="disable the ambient tracer (drops per-op "
                            "histograms, metrics deltas, and telemetry "
                            "flushes; the slow-op ring stays live)")
    start.add_argument("--telemetry-interval", type=float, default=1.0,
                       metavar="SECONDS",
                       help="seconds between gauge samples / run-DB "
                            "telemetry flushes, 0 = off "
                            "(default: %(default)s)")
    start.add_argument("--slow-k", type=int, default=DEFAULT_SLOW_K,
                       help="slow-op ring size — slowest requests "
                            "retained (default: %(default)s)")
    start.add_argument("--verbose", action="store_true",
                       help="print the span tree on shutdown")
    start.add_argument("--db", default=None, metavar="PATH",
                       help="run database recording this serve session "
                            "(default: $REPRO_DB or "
                            "~/.local/share/repro/runs.sqlite)")
    start.add_argument("--no-db", action="store_true",
                       help="do not record this session into the run "
                            "database (also: REPRO_NO_DB=1)")

    stat = sub.add_parser("stat", help="print a running server's stats")
    top = sub.add_parser(
        "top", help="live metrics view (polls the 'metrics' op)"
    )
    load = sub.add_parser(
        "load", help="replay a seeded churn trace against a server"
    )
    stop = sub.add_parser("stop", help="ask a running server to shut down")
    for cmd in (stat, top, load, stop):
        cmd.add_argument("--host", default="127.0.0.1",
                         help="server address (default: %(default)s)")
        cmd.add_argument("--port", type=int, default=7871,
                         help="server port (default: %(default)s)")
    top.add_argument("--interval", type=float, default=1.0,
                     help="seconds between polls (default: %(default)s)")
    top.add_argument("--iterations", type=int, default=0, metavar="N",
                     help="stop after N polls (default: run until ^C)")
    top.add_argument("--no-clear", action="store_true",
                     help="append views instead of clearing the screen")
    top.add_argument("--assert-ops", default=None, metavar="OP,OP",
                     help="exit nonzero unless every listed op saw "
                          "requests (CI gate)")
    top.add_argument("--require-p99-ms", action="append", default=[],
                     metavar="OP=MS",
                     help="exit nonzero when the op's aggregate p99 "
                          "exceeds MS (repeatable; bare MS = insert)")
    top.add_argument("--json", default=None, metavar="PATH",
                     help="write the final aggregate totals as JSON here")
    load.add_argument("--ops", type=int, default=1000,
                      help="trace mutations to replay (default: %(default)s)")
    load.add_argument("--qps", type=float, default=None,
                      help="target ops/sec (default: unthrottled)")
    load.add_argument("--size", type=int, default=500,
                      help="churn live-set size (default: %(default)s)")
    load.add_argument("--seed", type=int, default=1987,
                      help="trace seed (default: %(default)s)")
    load.add_argument("--dim", type=int, default=2,
                      help="point dimension (default: %(default)s)")
    load.add_argument("--query-fraction", type=float, default=0.2,
                      help="range/nearest queries per mutation "
                           "(default: %(default)s)")
    load.add_argument("--window", type=int, default=64,
                      help="max pipelined requests (default: %(default)s)")
    load.add_argument("--no-verify", action="store_true",
                      help="skip the final census-vs-local-replay check")
    load.add_argument("--json", default=None, metavar="PATH",
                      help="also write the report as JSON here")
    return parser


def _preload(args: argparse.Namespace) -> None:
    """Bulk-load a seeded point set into a fresh state file so the
    server cold-starts warm (one sequential page pass, no pool churn).
    ``open_state`` then opens it and creates the missing WAL at the
    stamped generation."""
    from ..storage.bulkload import bulk_load_paged
    from ..workloads import UniformPoints
    from .server import GENERATION_KEY

    points = UniformPoints(dim=args.dim, seed=args.preload_seed).generate(
        args.preload
    )
    tree = bulk_load_paged(
        args.path, points, capacity=args.capacity, dim=args.dim,
        page_size=args.page_size, pool_pages=args.pool_pages,
    )
    try:
        tree.pagefile.update_meta({GENERATION_KEY: 0})
        tree.checkpoint()
        loaded = len(tree)
    finally:
        tree.close()
    print(f"preloaded {args.path}: {loaded} points "
          f"(seed {args.preload_seed}, bulk)")


def _cmd_start(args: argparse.Namespace) -> int:
    # tracing defaults ON: the metrics op, serve telemetry flushes, and
    # p50/p99 in `serve top` all read the ambient tracer
    tracer = None if args.no_trace else Tracer()
    try:
        if args.preload > 0 and not Path(args.path).exists():
            _preload(args)
        tree, wal, replayed = open_state(
            args.path, create=True, capacity=args.capacity, dim=args.dim,
            page_size=args.page_size, pool_pages=args.pool_pages,
        )
    except (StorageError, WalError, ServiceError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if replayed:
        print(f"recovered {replayed} WAL records into {args.path}")

    from ..rundb import ServeTelemetryRecorder, resolve_db_path

    recorder: Optional[ServeTelemetryRecorder] = None
    db_path = resolve_db_path(args.db, no_db=args.no_db)
    if db_path is not None:
        recorder = ServeTelemetryRecorder(db_path, label=f"serve {args.path}")

    async def _serve() -> None:
        server = SpatialIndexServer(
            tree, wal, host=args.host, port=args.port,
            commit_interval=args.commit_interval,
            max_batch=args.max_batch,
            checkpoint_every=args.checkpoint_every,
            drift_threshold=args.drift_threshold,
            drift_sink=recorder.drift if recorder is not None else None,
            telemetry_interval=args.telemetry_interval,
            telemetry_sink=(
                recorder.telemetry if recorder is not None else None
            ),
            slow_k=args.slow_k,
        )
        await server.start()
        host, port = server.address
        if recorder is not None:
            recorder.start(extra={"path": str(args.path),
                                  "host": host, "port": port})
        print(
            f"serving {args.path} on {host}:{port} "
            f"({len(tree)} points, generation {server.generation})",
            flush=True,
        )
        loop = asyncio.get_event_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, server.request_shutdown)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # e.g. non-main thread or Windows
        await server.serve_forever()

    if tracer is not None:
        with tracing(tracer):
            asyncio.run(_serve())
    else:
        asyncio.run(_serve())
    if recorder is not None:
        recorder.finish(tracer)
    print("server stopped")
    if args.trace_out and tracer is not None:
        Path(args.trace_out).write_text(
            json.dumps(tracer.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote trace snapshot to {args.trace_out}")
    if args.verbose and tracer is not None:
        print()
        print(tracer.render())
    return 0


async def _call_once(host: str, port: int, op: str) -> dict:
    client = await ServiceClient.connect(host, port)
    try:
        return await client.call(op)
    finally:
        await client.close()


def _cmd_stat(args: argparse.Namespace) -> int:
    response = asyncio.run(_call_once(args.host, args.port, "stat"))
    if not response.get("ok"):
        print(f"error: {response.get('error')}", file=sys.stderr)
        return 1
    stats = response["result"]
    drift = stats["drift"]
    print(f"server at {args.host}:{args.port}: "
          f"{stats['points']} points in {stats['pages']} pages, "
          f"m={stats['capacity']}, dim={stats['dim']}, "
          f"generation {stats['generation']}, "
          f"up {stats['uptime_s']:.1f}s")
    print(f"  sessions : {stats['sessions']} open / "
          f"{stats['total_sessions']} total; "
          f"wal {stats['wal_records']} records, "
          f"{stats['mutations_since_checkpoint']} since checkpoint")
    if stats["ops"]:
        ops = ", ".join(
            f"{name}={count}" for name, count in sorted(stats["ops"].items())
        )
        print(f"  ops      : {ops}")
    print(f"  drift    : page {drift['page_error']:+.1%}, "
          f"occupancy {drift['occupancy_error']:+.1%}"
          + (" ALARM" if drift["alarm"] else
             ("" if drift["armed"] else " (disarmed: small population)")))
    for name, lat in sorted(stats.get("latency_ms", {}).items()):
        print(f"  {name:<9}: {lat['count']:>6.0f} ops  "
              f"p50 {lat['p50_ms']:7.3f}ms  p99 {lat['p99_ms']:7.3f}ms")
    return 0


def merge_metrics(
    payload: Dict[str, Any],
    totals: Dict[str, Histogram],
    counters: Dict[str, int],
) -> None:
    """Fold one ``metrics`` payload's deltas into running totals.

    Because server-side deltas are exact bucket-wise subtractions,
    merging every poll reconstructs the server's cumulative histograms
    bucket for bucket — the property the telemetry tests pin.
    """
    for name, data in payload.get("histograms", {}).items():
        delta = Histogram.from_dict(data)
        if name in totals:
            totals[name].merge(delta)
        else:
            totals[name] = delta
    for name, delta in payload.get("counters", {}).items():
        counters[name] = counters.get(name, 0) + int(delta)


def render_top(
    payload: Dict[str, Any],
    totals: Dict[str, Histogram],
    address: str,
    poll: int,
) -> str:
    """One ``serve top`` frame (pure: payload + totals in, text out)."""
    lines = [
        f"repro serve top — {address}  poll #{poll}  "
        f"up {payload.get('uptime_s', 0.0):.1f}s",
        f"  requests {payload.get('requests', 0)}"
        f" (+{payload.get('counters', {}).get('service.ops', 0)})"
        f"   queue depth {payload.get('queue_depth', 0)}"
        f"   pool hit rate {payload.get('pool_hit_rate', 0.0):.1%}",
    ]
    ops = sorted(
        (name[len("service.op."):], hist)
        for name, hist in totals.items()
        if name.startswith("service.op.") and hist.count
    )
    if ops:
        lines.append(
            "  op          count      p50      p90      p99      max"
        )
        for name, hist in ops:
            lines.append(
                f"  {name:<9} {hist.count:>7}  "
                f"{hist.p50 * 1e3:7.3f}  {hist.p90 * 1e3:7.3f}  "
                f"{hist.p99 * 1e3:7.3f}  {hist.max * 1e3:7.3f}  ms"
            )
    slow = payload.get("slow_ops", [])
    if slow:
        lines.append(f"  slowest requests (of {payload.get('requests', 0)}; "
                     f"{payload.get('slow_ops_evicted', 0)} evicted):")
        for entry in slow[:8]:
            spans = "  ".join(
                f"{name.rsplit('_s', 1)[0]} {ms:.2f}ms"
                for name, ms in sorted(entry.get("spans", {}).items())
            )
            lines.append(
                f"    #{entry['request_id']:<6} {entry['op']:<9} "
                f"{entry['latency_ms']:8.3f}ms  "
                f"args {entry['args_digest']}"
                + (f"  [{spans}]" if spans else "")
            )
    return "\n".join(lines)


def parse_p99_specs(specs: List[str]) -> Dict[str, float]:
    """``OP=MS`` gate specs (a bare number gates ``insert``)."""
    out: Dict[str, float] = {}
    for spec in specs:
        op, sep, ms = spec.partition("=")
        try:
            if sep:
                out[op.strip()] = float(ms)
            else:
                out["insert"] = float(spec)
        except ValueError:
            raise SystemExit(
                f"repro serve top: bad --require-p99-ms {spec!r} "
                "(expected OP=MS or a bare number of ms)"
            )
    return out


def check_top_gates(
    totals: Dict[str, Histogram],
    assert_ops: List[str],
    p99_specs: Dict[str, float],
) -> List[str]:
    """Problems with the aggregate totals (empty = gates pass)."""
    problems: List[str] = []
    for op in assert_ops:
        hist = totals.get(f"service.op.{op}")
        if hist is None or not hist.count:
            problems.append(f"op {op!r} saw no requests")
    for op, limit_ms in sorted(p99_specs.items()):
        hist = totals.get(f"service.op.{op}")
        if hist is None or not hist.count:
            problems.append(f"op {op!r} saw no requests (p99 gate)")
            continue
        p99_ms = hist.p99 * 1e3
        if p99_ms > limit_ms:
            problems.append(
                f"op {op!r} p99 {p99_ms:.3f}ms exceeds {limit_ms:g}ms"
            )
    return problems


async def _top_loop(
    args: argparse.Namespace,
) -> Tuple[Dict[str, Histogram], Dict[str, int]]:
    totals: Dict[str, Histogram] = {}
    counters: Dict[str, int] = {}
    client = await ServiceClient.connect(args.host, args.port)
    try:
        poll = 0
        while True:
            response = await client.call("metrics")
            if not response.get("ok"):
                raise LoadError(
                    f"metrics op failed: {response.get('error')}"
                )
            poll += 1
            payload = response["result"]
            merge_metrics(payload, totals, counters)
            frame = render_top(
                payload, totals, f"{args.host}:{args.port}", poll
            )
            if not args.no_clear and sys.stdout.isatty():
                print("\x1b[2J\x1b[H", end="")
            print(frame, flush=True)
            if args.iterations and poll >= args.iterations:
                break
            await asyncio.sleep(args.interval)
    finally:
        await client.close()
    return totals, counters


def _cmd_top(args: argparse.Namespace) -> int:
    try:
        totals, counters = asyncio.run(_top_loop(args))
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130
    if args.json:
        Path(args.json).write_text(
            json.dumps(
                {
                    "counters": dict(sorted(counters.items())),
                    "histograms": {
                        name: hist.to_dict()
                        for name, hist in sorted(totals.items())
                    },
                },
                indent=2, sort_keys=True,
            ) + "\n",
            encoding="utf-8",
        )
        print(f"wrote totals to {args.json}")
    assert_ops = [
        op.strip() for op in (args.assert_ops or "").split(",") if op.strip()
    ]
    problems = check_top_gates(
        totals, assert_ops, parse_p99_specs(args.require_p99_ms)
    )
    for problem in problems:
        print(f"GATE FAILED: {problem}", file=sys.stderr)
    return 1 if problems else 0


def _cmd_load(args: argparse.Namespace) -> int:
    report = asyncio.run(run_load(
        args.host, args.port,
        ops=args.ops, qps=args.qps, size=args.size, seed=args.seed,
        dim=args.dim, query_fraction=args.query_fraction,
        window=args.window, verify=not args.no_verify,
    ))
    print(report.summary())
    if args.json:
        Path(args.json).write_text(
            json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote report to {args.json}")
    return 0 if report.ok else 1


def _cmd_stop(args: argparse.Namespace) -> int:
    response = asyncio.run(_call_once(args.host, args.port, "shutdown"))
    if not response.get("ok"):
        print(f"error: {response.get('error')}", file=sys.stderr)
        return 1
    print(f"server at {args.host}:{args.port} shutting down")
    return 0


_HANDLERS = {
    "start": _cmd_start,
    "stat": _cmd_stat,
    "top": _cmd_top,
    "load": _cmd_load,
    "stop": _cmd_stop,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _HANDLERS[args.command](args)
    except LoadError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":
    sys.exit(main())
