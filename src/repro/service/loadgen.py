"""Load generation — replay churn traces against a live server.

:func:`run_load` connects as a real client, replays a seeded
:class:`~repro.workloads.ChurnWorkload` trace (warm-up inserts, then
delete/insert churn) at a target QPS, optionally mixes in range and
nearest queries, and reports achieved throughput plus latency
percentiles per op type (log-bucketed
:class:`~repro.obs.Histogram` underneath — the same estimator the
server's own traces use).

Requests are **pipelined** up to ``window`` outstanding: acks resolve
as the server's group commits land, so one client can push thousands
of durably-acknowledged mutations per second through a protocol that
fsyncs every batch.  Every response is checked: an ``ok: false``, a
fresh insert reported as duplicate, or a live delete reported as
missing all count as *failures* — the number CI asserts to be zero.
With ``verify=True`` (the default) the generator additionally replays
the same mutation trace into a local in-memory
:class:`~repro.quadtree.pr.PRQuadtree` and compares the server's final
``census`` bit for bit, so a run that "succeeds" by dropping writes
still fails loudly.  The local replay is seeded with the server's
*pre-existing* points (one full-bounds range query before the trace
starts), so verification works against a server that opened an
already-populated file — a PR quadtree's shape is a pure function of
its point set, so insertion order cannot perturb the comparison.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..geometry import Point
from ..obs import Histogram
from ..quadtree.pr import PRQuadtree
from ..workloads import INSERT, ChurnWorkload, UniformPoints
from .protocol import read_frame, write_frame

#: Edge length of the random query boxes, as a fraction of the unit
#: square's side (area ~1% each).
_RANGE_EDGE = 0.1


class LoadError(RuntimeError):
    """The load run could not complete (connection refused, dropped)."""


class ServiceClient:
    """A pipelining protocol client: ``call`` returns a future keyed by
    request id; a background task routes responses back."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ):
        self._reader = reader
        self._writer = writer
        self._next_id = 0
        self._pending: Dict[int, asyncio.Future] = {}
        self._closed = False
        self._conn_exc: Optional[LoadError] = None
        self._reader_task = asyncio.ensure_future(self._read_loop())

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServiceClient":
        try:
            reader, writer = await asyncio.open_connection(host, port)
        except OSError as exc:
            raise LoadError(f"cannot connect to {host}:{port}: {exc}") from exc
        return cls(reader, writer)

    async def _read_loop(self) -> None:
        error = LoadError("server closed the connection")
        try:
            while True:
                response = await read_frame(self._reader)
                if response is None:
                    break
                future = self._pending.pop(response.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(response)
        except asyncio.CancelledError:  # close() tearing us down
            error = LoadError("client is closed")
            raise
        except Exception as exc:  # noqa: BLE001 — fail all waiters
            error = (
                exc if isinstance(exc, LoadError)
                else LoadError(str(exc) or type(exc).__name__)
            )
        finally:
            # Ordering matters: record the terminal error *before*
            # failing the waiters, so a submit() racing this exit can
            # never register a future that nothing will ever resolve —
            # it either sees _conn_exc up front, or its post-write
            # re-check fails the fresh future immediately.
            self._conn_exc = error
            self._fail_pending(error)

    def _fail_pending(self, exc: BaseException) -> None:
        for future in self._pending.values():
            if not future.done():
                future.set_exception(
                    exc if isinstance(exc, LoadError)
                    else LoadError(str(exc) or type(exc).__name__)
                )
        self._pending.clear()

    async def submit(self, op: str, **fields: Any) -> asyncio.Future:
        """Send one request; returns the future of its response.

        Once the connection has died (server EOF, reset, or a local
        close), the future fails with a :class:`LoadError` naming the
        cause rather than hanging — a ``metrics``/``stat`` poll racing
        a shutdown gets a clean error, never a wedged await.
        """
        if self._closed:
            raise LoadError("client is closed")
        if self._conn_exc is not None:
            raise LoadError(f"cannot submit {op!r}: {self._conn_exc}")
        self._next_id += 1
        request = {"id": self._next_id, "op": op, **fields}
        future: asyncio.Future = asyncio.get_event_loop().create_future()
        self._pending[self._next_id] = future
        await write_frame(self._writer, request)
        if self._conn_exc is not None:
            # the read loop exited while we awaited the write: it will
            # never see this future, so fail it here
            self._fail_pending(self._conn_exc)
        return future

    async def call(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Send one request and await its response."""
        return await (await self.submit(op, **fields))

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, LoadError):
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass


@dataclass
class LoadReport:
    """What a load run achieved, in the shape CI and bench snapshot."""

    ops: int
    mutations: int
    queries: int
    failures: int
    wall_s: float
    achieved_qps: float
    target_qps: Optional[float]
    latencies: Dict[str, Histogram] = field(default_factory=dict)
    census_verified: Optional[bool] = None

    @property
    def ok(self) -> bool:
        """Zero failures, and the census check (when run) passed."""
        return self.failures == 0 and self.census_verified is not False

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready report (histograms reduced to count/p50/p99)."""
        return {
            "ops": self.ops,
            "mutations": self.mutations,
            "queries": self.queries,
            "failures": self.failures,
            "wall_s": self.wall_s,
            "achieved_qps": self.achieved_qps,
            "target_qps": self.target_qps,
            "census_verified": self.census_verified,
            "latency_ms": {
                name: {
                    "count": hist.count,
                    "p50": hist.p50 * 1e3,
                    "p90": hist.p90 * 1e3,
                    "p99": hist.p99 * 1e3,
                }
                for name, hist in sorted(self.latencies.items())
                if hist.count
            },
        }

    def summary(self) -> str:
        """Human-readable digest."""
        lines = [
            f"load: {self.ops} ops ({self.mutations} mutations, "
            f"{self.queries} queries) in {self.wall_s:.3f}s — "
            f"{self.achieved_qps:.0f} ops/s"
            + (f" (target {self.target_qps:g})" if self.target_qps else ""),
            f"  failures : {self.failures}"
            + ("" if self.failures == 0 else "  <-- FAILED OPS"),
        ]
        if self.census_verified is not None:
            lines.append(
                "  census   : "
                + ("matches local replay" if self.census_verified
                   else "MISMATCH vs local replay")
            )
        for name, hist in sorted(self.latencies.items()):
            if hist.count:
                lines.append(
                    f"  {name:<9}: {hist.count:>6} ops  "
                    f"p50 {hist.p50 * 1e3:7.3f}ms  "
                    f"p99 {hist.p99 * 1e3:7.3f}ms"
                )
        return "\n".join(lines)


async def run_load(
    host: str,
    port: int,
    ops: int = 1000,
    qps: Optional[float] = None,
    size: int = 500,
    seed: int = 1987,
    dim: int = 2,
    query_fraction: float = 0.2,
    window: int = 64,
    k: int = 3,
    verify: bool = True,
) -> LoadReport:
    """Drive the server at ``host:port`` with a seeded churn trace.

    ``ops`` counts *mutations* from the trace; queries ride along on
    top at ``query_fraction`` per mutation.  ``qps`` paces the total
    op stream (None = as fast as the window allows).  See the module
    docstring for the failure and verification semantics.
    """
    if ops < 1:
        raise ValueError(f"ops must be >= 1, got {ops}")
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    if not 0.0 <= query_fraction <= 1.0:
        raise ValueError(
            f"query_fraction must be in [0, 1], got {query_fraction}"
        )
    workload = ChurnWorkload(
        size=max(1, min(size, ops)),
        generator=UniformPoints(dim=dim, seed=seed),
        seed=seed,
    )
    # enough churn steps to cover the budget after warm-up (2 ops each)
    trace = workload.operations(churn_steps=ops)
    rng = np.random.default_rng(seed + 1)
    live: Optional[set] = set() if verify else None

    client = await ServiceClient.connect(host, port)
    latencies: Dict[str, Histogram] = {}
    failures = 0
    mutations = 0
    queries = 0
    in_flight: List[asyncio.Task] = []
    gate = asyncio.Semaphore(window)

    async def tracked(
        op_name: str, expect: Optional[bool], **fields: Any
    ) -> None:
        nonlocal failures
        began = time.perf_counter()
        try:
            response = await client.call(op_name, **fields)
        finally:
            gate.release()
        hist = latencies.get(op_name)
        if hist is None:
            hist = latencies[op_name] = Histogram()
        hist.observe(time.perf_counter() - began)
        if not response.get("ok"):
            failures += 1
        elif expect is not None and response.get("result") is not expect:
            # a fresh insert bouncing or a live delete missing means
            # the server lost state — that is a failed op too
            failures += 1

    def queue(coroutine) -> None:
        in_flight.append(asyncio.ensure_future(coroutine))

    sent = 0
    try:
        if live is not None:
            # the server may have opened an already-populated file:
            # seed the local replay with its current points so the
            # final census compare stays bit-exact (tree shape is a
            # pure function of the point set, not insertion order)
            stat = await client.call("stat")
            if stat.get("ok"):
                lo, hi = stat["result"]["bounds"]
                baseline = await client.call("range", lo=lo, hi=hi)
            if not stat.get("ok") or not baseline.get("ok"):
                live = None  # no baseline — skip verification
            else:
                for coords in baseline["result"]:
                    live.add(Point(*[float(c) for c in coords]))
        began = time.perf_counter()
        while mutations < ops:
            try:
                op, point = next(trace)
            except StopIteration:  # pragma: no cover - budget math
                break
            if qps:
                target = began + sent / qps
                delay = target - time.perf_counter()
                if delay > 0:
                    await asyncio.sleep(delay)
            await gate.acquire()
            coords = list(point.coords)
            if op == INSERT:
                queue(tracked("insert", True, point=coords))
            else:
                queue(tracked("delete", True, point=coords))
            if live is not None:
                (live.add if op == INSERT else live.discard)(point)
            mutations += 1
            sent += 1
            if query_fraction and rng.random() < query_fraction:
                await gate.acquire()
                center = [float(rng.random()) for _ in range(dim)]
                if rng.random() < 0.5:
                    lo = [max(0.0, c - _RANGE_EDGE / 2) for c in center]
                    hi = [min(1.0, c + _RANGE_EDGE / 2) for c in center]
                    queue(tracked("range", None, lo=lo, hi=hi))
                else:
                    queue(tracked("nearest", None, point=center, k=k))
                queries += 1
                sent += 1
        if in_flight:
            await asyncio.gather(*in_flight)
        wall_s = time.perf_counter() - began
        census_verified: Optional[bool] = None
        if live is not None:
            response = await client.call("census")
            if response.get("ok"):
                counts = response["result"]["counts"]
                capacity = response["result"]["capacity"]
                local = PRQuadtree(capacity=capacity, dim=dim)
                for p in live:
                    local.insert(p)
                census_verified = (
                    list(local.occupancy_census().counts) == list(counts)
                )
            else:
                census_verified = False
    finally:
        await client.close()
    return LoadReport(
        ops=mutations + queries,
        mutations=mutations,
        queries=queries,
        failures=failures,
        wall_s=wall_s,
        achieved_qps=(mutations + queries) / wall_s if wall_s > 0 else 0.0,
        target_qps=qps,
        latencies=latencies,
        census_verified=census_verified,
    )
