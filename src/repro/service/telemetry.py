"""The serving path's live telemetry plane.

Three pieces turn the server's ambient tracer into something a human
(or CI) can watch *while the server runs*, instead of a snapshot at
shutdown:

- **Request identity.**  :class:`ServiceTelemetry` hands every request
  a server-side monotonically increasing request ID and a stable
  :func:`args_digest` of its payload.  Aggregate span names must stay
  bounded (that is the obs layer's memory contract), so per-request
  tags live here — in the slow-op ring — not in span paths.

- **Slow-op ring.**  :class:`SlowOpRing` keeps the top-K slowest
  requests seen so far: op, args digest, latency, and the request's
  span breakdown (queue wait / group-commit fsync / apply for
  mutations, handler time for reads).  Bounded by construction;
  eviction drops the *fastest* resident entry first.

- **Metric deltas.**  :class:`MetricsCursor` remembers the previous
  poll's counter values and histogram snapshots so the ``metrics``
  wire op can return what happened *since the last poll* — each
  connection owns one cursor, so two monitors polling the same server
  never steal each other's deltas.  Histogram deltas are exact
  bucket-wise subtraction (:meth:`repro.obs.Histogram.delta`), which
  makes the client-side reconstruction (merge every poll's delta)
  equal the server's cumulative histogram bucket for bucket.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from ..obs import Histogram

#: Default slow-op ring capacity (top-K slowest requests retained).
DEFAULT_SLOW_K = 16

#: Histogram/gauge name prefixes the ``metrics`` op reports; anything
#: else on the tracer (runtime spans, storage internals outside the
#: pool) is reachable via the full trace snapshot instead.
METRIC_PREFIXES = ("service.", "storage.pool.")


def args_digest(request: Mapping[str, Any]) -> str:
    """A stable 8-hex digest of a request's arguments.

    The client-assigned ``id`` is excluded (it varies per request even
    for identical work), so retries and repeated hot queries collapse
    to one digest — which is exactly what makes the slow-op ring
    readable: "this same range box keeps showing up".
    """
    fields = {k: v for k, v in request.items() if k != "id"}
    blob = json.dumps(
        fields, sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.blake2b(blob.encode("utf-8"), digest_size=4).hexdigest()


@dataclass
class SlowOp:
    """One retained slow request."""

    request_id: int
    op: str
    digest: str
    latency_s: float
    unix: float
    phases: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "request_id": self.request_id,
            "op": self.op,
            "args_digest": self.digest,
            "latency_ms": self.latency_s * 1e3,
            "unix": self.unix,
            "spans": {
                name: seconds * 1e3
                for name, seconds in sorted(self.phases.items())
            },
        }


class SlowOpRing:
    """Bounded top-K slowest requests, slowest first.

    Insertion keeps the ring sorted by descending latency; once full,
    a new entry must beat the current fastest resident to enter, and
    the fastest resident is what gets evicted — so the ring converges
    on the K worst requests of the server's lifetime, not the K most
    recent.
    """

    def __init__(self, k: int = DEFAULT_SLOW_K):
        if k < 1:
            raise ValueError(f"slow-op ring size must be >= 1, got {k}")
        self._k = k
        self._entries: List[SlowOp] = []
        self.evicted = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def floor(self) -> float:
        """Latency a new entry must beat once the ring is full."""
        if len(self._entries) < self._k:
            return 0.0
        return self._entries[-1].latency_s

    def observe(self, entry: SlowOp) -> bool:
        """Offer one request; returns True when it was retained."""
        entries = self._entries
        if len(entries) >= self._k:
            if entry.latency_s <= entries[-1].latency_s:
                return False
            entries.pop()  # evict the fastest resident
            self.evicted += 1
        lo, hi = 0, len(entries)
        while lo < hi:  # descending-order insertion point
            mid = (lo + hi) // 2
            if entries[mid].latency_s >= entry.latency_s:
                lo = mid + 1
            else:
                hi = mid
        entries.insert(lo, entry)
        return True

    def to_list(self) -> List[Dict[str, Any]]:
        """JSON-ready entries, slowest first."""
        return [entry.to_dict() for entry in self._entries]


class ServiceTelemetry:
    """Per-server request identity + slow-op retention.

    One instance lives on the server; sessions call
    :meth:`next_request_id` at frame receipt and :meth:`observe` at
    response time.  Everything here is O(log K) per request and
    allocation-light — the serve-path overhead test in
    ``tests/test_obs_overhead.py`` pins the per-request cost.
    """

    def __init__(self, slow_k: int = DEFAULT_SLOW_K):
        self.ring = SlowOpRing(slow_k)
        self._next_request_id = 0

    def next_request_id(self) -> int:
        self._next_request_id += 1
        return self._next_request_id

    @property
    def requests(self) -> int:
        """Request IDs handed out so far."""
        return self._next_request_id

    def observe(
        self,
        request_id: int,
        op: str,
        digest: "str | Mapping[str, Any]",
        latency_s: float,
        phases: Optional[Dict[str, float]] = None,
    ) -> None:
        """Fold one completed request into the slow-op ring.

        ``digest`` is either a precomputed 8-hex digest or the raw
        request mapping; in the latter case the digest is computed
        *lazily*, only after the request has cleared the ring's floor —
        the common fast request never pays for the JSON dump + hash.
        """
        if latency_s <= self.ring.floor:
            return  # too fast to matter — skip the SlowOp allocation
        if not isinstance(digest, str):
            digest = args_digest(digest)
        self.ring.observe(SlowOp(
            request_id=request_id,
            op=op,
            digest=digest,
            latency_s=latency_s,
            unix=time.time(),
            phases=phases or {},
        ))


class MetricsCursor:
    """One poller's delta state for the ``metrics`` wire op.

    Sessions own a cursor each; every call to :meth:`counter_deltas` /
    :meth:`histogram_deltas` returns what accumulated since this
    cursor's previous call and advances the cursor.  A counter or
    histogram that went *backwards* (tracer swapped under a live
    server) resynchronizes to the full cumulative value.
    """

    def __init__(self):
        self.seq = 0
        self._counters: Dict[str, int] = {}
        self._hists: Dict[str, Histogram] = {}

    def advance(self) -> int:
        """Bump and return the poll sequence number."""
        self.seq += 1
        return self.seq

    def counter_deltas(self, counters: Mapping[str, int]) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for name, value in counters.items():
            previous = self._counters.get(name, 0)
            delta = int(value) - previous
            if delta < 0:  # counter restarted — resynchronize
                delta = int(value)
            self._counters[name] = int(value)
            if delta:
                out[name] = delta
        return out

    def histogram_deltas(
        self, histograms: Mapping[str, Histogram]
    ) -> Dict[str, Dict[str, Any]]:
        """Sparse ``Histogram.to_dict`` deltas for every histogram that
        observed anything since the previous poll."""
        out: Dict[str, Dict[str, Any]] = {}
        for name, hist in histograms.items():
            if not name.startswith(METRIC_PREFIXES):
                continue
            delta = hist.delta(self._hists.get(name))
            self._hists[name] = hist.copy()
            if delta.count:
                out[name] = delta.to_dict()
        return out
