"""Neighbor finding in PR quadtrees (Samet's classic primitive).

Adjacency between leaf blocks drives connected-component labeling,
region growing, and boundary following — the GIS operations that
motivated the paper's storage analysis.  This module answers, for any
leaf block of a planar PR quadtree, which leaf blocks share a positive-
length edge with it on a given side.

The adjacency decision is exact half-open arithmetic on block corners
(regular decomposition makes shared boundaries bit-identical, so no
epsilons are needed).  Per-block queries scan the leaf list; the bulk
edge-list builder groups leaves by boundary coordinate so whole-tree
adjacency costs O(leaves + pairs).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from ..geometry import Rect
from .pr import PRQuadtree

#: Side names for planar neighbor queries.
SIDES = ("west", "east", "south", "north")


def _side_interval(rect: Rect, side: str) -> Tuple[float, float, float]:
    """``(fixed_coordinate, lo, hi)`` of the side's edge."""
    if side == "west":
        return (rect.lo.x, rect.lo.y, rect.hi.y)
    if side == "east":
        return (rect.hi.x, rect.lo.y, rect.hi.y)
    if side == "south":
        return (rect.lo.y, rect.lo.x, rect.hi.x)
    if side == "north":
        return (rect.hi.y, rect.lo.x, rect.hi.x)
    raise ValueError(f"side must be one of {SIDES}, got {side!r}")


def edge_neighbors(
    tree: PRQuadtree, block: Rect, side: str
) -> List[Rect]:
    """Leaf blocks sharing a positive-length edge with ``block``'s
    ``side``.

    ``block`` must be a leaf block of ``tree`` (checked).  Blocks on
    the tree boundary have no neighbors beyond it.
    """
    if tree.dim != 2:
        raise ValueError("neighbor finding is planar")
    if not any(rect == block for rect, _, _ in tree.leaves()):
        raise ValueError(f"{block!r} is not a leaf block of the tree")
    fixed, lo, hi = _side_interval(block, side)
    bounds = tree.bounds
    horizontal = side in ("west", "east")
    axis_lo = bounds.lo.x if horizontal else bounds.lo.y
    axis_hi = bounds.hi.x if horizontal else bounds.hi.y
    if side in ("west", "south"):
        if fixed <= axis_lo:
            return []
    else:
        if fixed >= axis_hi:
            return []
    out: List[Rect] = []
    for rect in _leaf_rects(tree):
        if rect == block:
            continue
        if horizontal:
            touching = (
                rect.hi.x == fixed if side == "west" else rect.lo.x == fixed
            )
            overlap = min(hi, rect.hi.y) - max(lo, rect.lo.y)
        else:
            touching = (
                rect.hi.y == fixed if side == "south" else rect.lo.y == fixed
            )
            overlap = min(hi, rect.hi.x) - max(lo, rect.lo.x)
        if touching and overlap > 0:
            out.append(rect)
    return out


def _leaf_rects(tree: PRQuadtree) -> Iterator[Rect]:
    for rect, _, _ in tree.leaves():
        yield rect


def all_neighbor_pairs(tree: PRQuadtree) -> List[Tuple[Rect, Rect]]:
    """Every unordered pair of edge-adjacent leaf blocks.

    Computed by an interval sweep over shared boundary coordinates;
    used by the tests to check symmetry and by adjacency consumers
    (component labeling) as the leaf-graph edge list.
    """
    if tree.dim != 2:
        raise ValueError("neighbor finding is planar")
    leaves = list(_leaf_rects(tree))
    pairs: List[Tuple[Rect, Rect]] = []
    # group by candidate shared x boundary, then check y-overlap
    by_right: Dict[float, List[Rect]] = {}
    for rect in leaves:
        by_right.setdefault(rect.hi.x, []).append(rect)
    for rect in leaves:
        for other in by_right.get(rect.lo.x, ()):  # other.hi.x == rect.lo.x
            if min(rect.hi.y, other.hi.y) - max(rect.lo.y, other.lo.y) > 0:
                pairs.append((other, rect))
    by_top: Dict[float, List[Rect]] = {}
    for rect in leaves:
        by_top.setdefault(rect.hi.y, []).append(rect)
    for rect in leaves:
        for other in by_top.get(rect.lo.y, ()):  # other.hi.y == rect.lo.y
            if min(rect.hi.x, other.hi.x) - max(rect.lo.x, other.lo.x) > 0:
                pairs.append((other, rect))
    return pairs


def leaf_adjacency_degree(tree: PRQuadtree) -> Dict[Rect, int]:
    """Number of edge-adjacent leaves per leaf — the branching profile
    of the leaf graph (used in the examples)."""
    degree: Dict[Rect, int] = {rect: 0 for rect in _leaf_rects(tree)}
    for a, b in all_neighbor_pairs(tree):
        degree[a] += 1
        degree[b] += 1
    return degree
