"""Occupancy censuses — the measurement layer of the paper.

The paper's experiments all reduce to counting leaf nodes by occupancy
(and, for the aging study, by depth).  Every bucketing structure in this
package can produce an :class:`OccupancyCensus`; the experiment harness
averages censuses over repeated trials and compares the resulting
proportion vectors with the population model's prediction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple


@dataclass(frozen=True)
class OccupancyCensus:
    """Counts of leaf nodes by occupancy.

    ``counts[i]`` is the number of leaves holding exactly ``i`` items;
    the vector always has ``capacity + 1`` entries so proportion vectors
    from different trees line up componentwise.
    """

    counts: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.counts:
            raise ValueError("census needs at least one occupancy class")
        if any(c < 0 for c in self.counts):
            raise ValueError("negative occupancy count")

    @classmethod
    def from_occupancies(
        cls, occupancies: Sequence[int], capacity: int
    ) -> "OccupancyCensus":
        """Tally per-leaf occupancies into a census.

        Accepts any integer sequence; numpy integer arrays take a
        ``bincount`` fast path (the vector census engine hands in tens
        of thousands of leaves at once).  Both paths produce identical
        censuses and reject out-of-range occupancies identically.
        """
        import numpy as np

        if isinstance(occupancies, np.ndarray):
            if occupancies.size == 0:
                return cls(tuple([0] * (capacity + 1)))
            if not np.issubdtype(occupancies.dtype, np.integer):
                raise TypeError(
                    f"occupancies must be integers, got {occupancies.dtype}"
                )
            bad = occupancies[
                (occupancies < 0) | (occupancies > capacity)
            ]
            if bad.size:
                raise ValueError(
                    f"occupancy {int(bad.flat[0])} outside 0..{capacity}"
                )
            counts = np.bincount(occupancies, minlength=capacity + 1)
            return cls(tuple(int(c) for c in counts))
        counts = [0] * (capacity + 1)
        for occ in occupancies:
            if not 0 <= occ <= capacity:
                raise ValueError(
                    f"occupancy {occ} outside 0..{capacity}"
                )
            counts[occ] += 1
        return cls(tuple(counts))

    @property
    def capacity(self) -> int:
        """Maximum representable occupancy (m in the paper)."""
        return len(self.counts) - 1

    @property
    def total_nodes(self) -> int:
        """Total number of leaf nodes."""
        return sum(self.counts)

    @property
    def total_items(self) -> int:
        """Total number of stored items (sum of occupancy * count)."""
        return sum(i * c for i, c in enumerate(self.counts))

    def proportions(self) -> Tuple[float, ...]:
        """The state vector d = (p_0, ..., p_m) of Section III.

        Proportions of nodes in each occupancy class; sums to 1.
        Raises ``ValueError`` for an empty census — a structure always
        has at least one (possibly empty) leaf, so this indicates a bug.
        """
        n = self.total_nodes
        if n == 0:
            raise ValueError("census has no nodes")
        return tuple(c / n for c in self.counts)

    def average_occupancy(self) -> float:
        """Mean items per leaf — the paper's summary statistic.

        Equals the dot product of the proportion vector with
        ``(0, 1, ..., m)``.
        """
        return self.total_items / self.total_nodes

    def storage_utilization(self) -> float:
        """Fraction of bucket slots in use: items / (nodes * capacity)."""
        if self.capacity == 0:
            raise ValueError("capacity-0 census has no slots")
        return self.total_items / (self.total_nodes * self.capacity)

    def merged_with(self, other: "OccupancyCensus") -> "OccupancyCensus":
        """Componentwise sum — pooling the leaves of two trees."""
        if self.capacity != other.capacity:
            raise ValueError(
                f"capacity mismatch: {self.capacity} vs {other.capacity}"
            )
        return OccupancyCensus(
            tuple(a + b for a, b in zip(self.counts, other.counts))
        )


@dataclass(frozen=True)
class DepthCensus:
    """Counts of leaf nodes by (depth, occupancy) — the aging probe.

    Table 3 of the paper tabulates, for each depth, how many leaves of
    each occupancy exist and the resulting per-depth average occupancy.
    """

    by_depth: Mapping[int, Tuple[int, ...]]
    capacity: int

    @classmethod
    def from_leaves(
        cls, leaves: Sequence[Tuple[int, int]], capacity: int
    ) -> "DepthCensus":
        """Tally ``(depth, occupancy)`` pairs."""
        table: Dict[int, List[int]] = {}
        for depth, occ in leaves:
            if depth < 0:
                raise ValueError(f"negative depth {depth}")
            if not 0 <= occ <= capacity:
                raise ValueError(f"occupancy {occ} outside 0..{capacity}")
            row = table.setdefault(depth, [0] * (capacity + 1))
            row[occ] += 1
        return cls({d: tuple(row) for d, row in table.items()}, capacity)

    def depths(self) -> List[int]:
        """Sorted list of depths that contain leaves."""
        return sorted(self.by_depth)

    def counts_at(self, depth: int) -> Tuple[int, ...]:
        """Occupancy counts at one depth (zeros if no leaves there)."""
        return self.by_depth.get(depth, tuple([0] * (self.capacity + 1)))

    def nodes_at(self, depth: int) -> int:
        """Number of leaves at ``depth``."""
        return sum(self.counts_at(depth))

    def average_occupancy_at(self, depth: int) -> float:
        """Mean occupancy of leaves at one depth.

        Raises ``ValueError`` if there are no leaves at that depth.
        """
        counts = self.counts_at(depth)
        nodes = sum(counts)
        if nodes == 0:
            raise ValueError(f"no leaves at depth {depth}")
        return sum(i * c for i, c in enumerate(counts)) / nodes

    def flatten(self) -> OccupancyCensus:
        """Collapse depths into a plain occupancy census."""
        totals = [0] * (self.capacity + 1)
        for row in self.by_depth.values():
            for i, c in enumerate(row):
                totals[i] += c
        return OccupancyCensus(tuple(totals))


@dataclass
class CensusAccumulator:
    """Running average of censuses over repeated trials.

    The paper's protocol is "ten trees of 1000 random points, averaged";
    this accumulator keeps per-class running sums so the mean census,
    mean node count and mean occupancy can be read off at the end.
    """

    capacity: int
    _count_sums: List[float] = field(default_factory=list)
    _trials: int = 0

    def __post_init__(self) -> None:
        if self.capacity < 0:
            raise ValueError("capacity must be >= 0")
        if not self._count_sums:
            self._count_sums = [0.0] * (self.capacity + 1)

    @property
    def trials(self) -> int:
        """Number of censuses added so far."""
        return self._trials

    def add(self, census: OccupancyCensus) -> None:
        """Fold one trial's census into the running sums."""
        if census.capacity != self.capacity:
            raise ValueError(
                f"capacity mismatch: {census.capacity} vs {self.capacity}"
            )
        for i, c in enumerate(census.counts):
            self._count_sums[i] += c
        self._trials += 1

    @property
    def count_sums(self) -> Tuple[float, ...]:
        """Raw per-class count sums (not averaged) — the mergeable
        state a parallel worker ships back to the coordinator."""
        return tuple(self._count_sums)

    def merge(self, other: "CensusAccumulator") -> None:
        """Fold another accumulator's trials into this one.

        The parallel harness gives each worker its own accumulator and
        merges the partials afterwards; because the per-class sums are
        integer-valued (exact in floating point up to 2**53), merging
        partials is *bit-identical* to adding every census sequentially,
        in any association order.
        """
        if other.capacity != self.capacity:
            raise ValueError(
                f"capacity mismatch: {other.capacity} vs {self.capacity}"
            )
        for i, s in enumerate(other._count_sums):
            self._count_sums[i] += s
        self._trials += other._trials

    def mean_counts(self) -> Tuple[float, ...]:
        """Average node count per occupancy class across trials."""
        self._require_trials()
        return tuple(s / self._trials for s in self._count_sums)

    def mean_total_nodes(self) -> float:
        """Average leaves per tree (the 'nodes' column of Tables 4/5)."""
        self._require_trials()
        return sum(self._count_sums) / self._trials

    def mean_proportions(self) -> Tuple[float, ...]:
        """Pooled proportion vector — the experimental rows of Table 1."""
        total = sum(self._count_sums)
        if total == 0:
            raise ValueError("no nodes accumulated")
        return tuple(s / total for s in self._count_sums)

    def mean_occupancy(self) -> float:
        """Pooled average occupancy — the experimental column of Table 2."""
        total_nodes = sum(self._count_sums)
        if total_nodes == 0:
            raise ValueError("no nodes accumulated")
        total_items = sum(i * s for i, s in enumerate(self._count_sums))
        return total_items / total_nodes

    def _require_trials(self) -> None:
        if self._trials == 0:
            raise ValueError("no trials accumulated")
