"""The region quadtree (Klinger 1971; Samet 1984).

The original quadtree the paper's Section II taxonomy starts from:
a ``2^k x 2^k`` binary image is recursively quartered until every
block is homogeneous (all 1s or all 0s).  Unlike the point structures,
the "data items" are pixels and the census of interest is blocks by
size — but the machinery (regular decomposition, block censuses,
ASCII rendering) is shared with the rest of the package.

Supports building from a boolean raster, exact reconstruction, set
operations (union / intersection / complement) computed directly on
the trees, and pixel-level updates with re-merging.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np


class _Leaf:
    """A homogeneous block: every pixel equals ``value``."""

    __slots__ = ("value",)

    def __init__(self, value: bool):
        self.value = value


class _Internal:
    """Four children in bitmask order (bit0 = x-high, bit1 = y-high)."""

    __slots__ = ("children",)

    def __init__(self, children: List["_Node"]):
        self.children = children


_Node = Union[_Leaf, _Internal]


def _merged(children: List[_Node]) -> _Node:
    """Collapse four identical-valued leaves into one."""
    if all(isinstance(c, _Leaf) for c in children):
        first = children[0]
        assert isinstance(first, _Leaf)
        if all(c.value == first.value for c in children):  # type: ignore[union-attr]
            return _Leaf(first.value)
    return _Internal(children)


class RegionQuadtree:
    """A region quadtree over a ``2^k x 2^k`` binary image.

    Pixel (x, y) has x growing rightward and y growing upward, matching
    the geometric convention of the rest of the package.
    """

    def __init__(self, size: int):
        if size < 1 or size & (size - 1):
            raise ValueError(f"size must be a power of two >= 1, got {size}")
        self._size = size
        self._root: _Node = _Leaf(False)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def from_array(cls, image: Sequence[Sequence[bool]]) -> "RegionQuadtree":
        """Build from a square boolean array; ``image[y][x]`` indexing."""
        arr = np.asarray(image, dtype=bool)
        if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
            raise ValueError(f"image must be square 2-d, got {arr.shape}")
        tree = cls(arr.shape[0])
        tree._root = cls._build(arr)
        return tree

    @staticmethod
    def _build(arr: np.ndarray) -> _Node:
        if arr.all():
            return _Leaf(True)
        if not arr.any():
            return _Leaf(False)
        half = arr.shape[0] // 2
        # children in bitmask order: SW, SE, NW, NE with y upward means
        # row index grows with y: rows [0:half] are the y-low half.
        quadrants = [
            arr[:half, :half],      # SW
            arr[:half, half:],      # SE
            arr[half:, :half],      # NW
            arr[half:, half:],      # NE
        ]
        return _merged([RegionQuadtree._build(q) for q in quadrants])

    @property
    def size(self) -> int:
        """Image side length (2^k pixels)."""
        return self._size

    # ------------------------------------------------------------------
    # pixel access
    # ------------------------------------------------------------------

    def _check_xy(self, x: int, y: int) -> None:
        if not (0 <= x < self._size and 0 <= y < self._size):
            raise ValueError(
                f"pixel ({x}, {y}) outside {self._size}x{self._size} image"
            )

    def get(self, x: int, y: int) -> bool:
        """The pixel value at (x, y)."""
        self._check_xy(x, y)
        node = self._root
        half = self._size // 2
        while isinstance(node, _Internal):
            idx = (1 if x >= half else 0) | (2 if y >= half else 0)
            if x >= half:
                x -= half
            if y >= half:
                y -= half
            node = node.children[idx]
            half //= 2
        return node.value

    def set(self, x: int, y: int, value: bool) -> None:
        """Set one pixel, splitting and re-merging blocks as needed."""
        self._check_xy(x, y)
        self._root = self._set(self._root, self._size, x, y, bool(value))

    def _set(self, node: _Node, size: int, x: int, y: int, value: bool) -> _Node:
        if isinstance(node, _Leaf):
            if node.value == value:
                return node
            if size == 1:
                return _Leaf(value)
            node = _Internal([_Leaf(node.value) for _ in range(4)])
        half = size // 2
        idx = (1 if x >= half else 0) | (2 if y >= half else 0)
        cx = x - half if x >= half else x
        cy = y - half if y >= half else y
        children = list(node.children)
        children[idx] = self._set(children[idx], half, cx, cy, value)
        return _merged(children)

    # ------------------------------------------------------------------
    # whole-image views
    # ------------------------------------------------------------------

    def to_array(self) -> np.ndarray:
        """Reconstruct the full boolean raster (``[y][x]`` indexing)."""
        out = np.zeros((self._size, self._size), dtype=bool)
        for x, y, size, value in self.blocks():
            if value:
                out[y : y + size, x : x + size] = True
        return out

    def blocks(self) -> Iterator[Tuple[int, int, int, bool]]:
        """Yield ``(x, y, side, value)`` for every leaf block."""
        stack: List[Tuple[_Node, int, int, int]] = [
            (self._root, 0, 0, self._size)
        ]
        while stack:
            node, x, y, size = stack.pop()
            if isinstance(node, _Leaf):
                yield (x, y, size, node.value)
            else:
                half = size // 2
                stack.append((node.children[0], x, y, half))
                stack.append((node.children[1], x + half, y, half))
                stack.append((node.children[2], x, y + half, half))
                stack.append((node.children[3], x + half, y + half, half))

    def leaf_count(self) -> int:
        """Number of leaf blocks."""
        return sum(1 for _ in self.blocks())

    def block_size_census(self) -> Dict[int, int]:
        """Counts of *black* (True) blocks by side length — the region
        quadtree's storage profile."""
        census: Dict[int, int] = {}
        for _, _, size, value in self.blocks():
            if value:
                census[size] = census.get(size, 0) + 1
        return census

    def black_area(self) -> int:
        """Number of True pixels."""
        return sum(
            size * size for _, _, size, value in self.blocks() if value
        )

    # ------------------------------------------------------------------
    # set operations
    # ------------------------------------------------------------------

    def union(self, other: "RegionQuadtree") -> "RegionQuadtree":
        """Pixelwise OR, computed on the trees."""
        return self._combine(other, lambda a, b: a or b)

    def intersection(self, other: "RegionQuadtree") -> "RegionQuadtree":
        """Pixelwise AND, computed on the trees."""
        return self._combine(other, lambda a, b: a and b)

    def complement(self) -> "RegionQuadtree":
        """Pixelwise NOT."""
        out = RegionQuadtree(self._size)
        out._root = self._complemented(self._root)
        return out

    @staticmethod
    def _complemented(node: _Node) -> _Node:
        if isinstance(node, _Leaf):
            return _Leaf(not node.value)
        return _Internal(
            [RegionQuadtree._complemented(c) for c in node.children]
        )

    def _combine(self, other: "RegionQuadtree", op) -> "RegionQuadtree":
        if other._size != self._size:
            raise ValueError(
                f"size mismatch: {self._size} vs {other._size}"
            )
        out = RegionQuadtree(self._size)
        out._root = self._combined(self._root, other._root, op)
        return out

    @staticmethod
    def _combined(a: _Node, b: _Node, op) -> _Node:
        if isinstance(a, _Leaf) and isinstance(b, _Leaf):
            return _Leaf(op(a.value, b.value))
        if isinstance(a, _Leaf):
            # short-circuit: OR with all-True / AND with all-False is a
            # is decided without descending b
            if op(a.value, True) == op(a.value, False):
                return _Leaf(op(a.value, True))
            assert isinstance(b, _Internal)
            return _merged(
                [
                    RegionQuadtree._combined(a, child, op)
                    for child in b.children
                ]
            )
        if isinstance(b, _Leaf):
            return RegionQuadtree._combined(b, a, op)
        return _merged(
            [
                RegionQuadtree._combined(ca, cb, op)
                for ca, cb in zip(a.children, b.children)
            ]
        )

    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Invariant: no internal node has four equal leaf children
        (the tree is maximally merged), and block geometry tiles the
        image exactly."""
        total = 0
        stack: List[Tuple[_Node, int]] = [(self._root, self._size)]
        while stack:
            node, size = stack.pop()
            if isinstance(node, _Leaf):
                total += size * size
            else:
                assert size >= 2, "internal node below pixel level"
                if all(isinstance(c, _Leaf) for c in node.children):
                    values = {c.value for c in node.children}  # type: ignore[union-attr]
                    assert len(values) > 1, "unmerged homogeneous block"
                for child in node.children:
                    stack.append((child, size // 2))
        assert total == self._size * self._size

    def render(self) -> str:
        """ASCII view: '#' for True pixels, '.' for False; top row is
        the highest y."""
        arr = self.to_array()
        rows = []
        for y in range(self._size - 1, -1, -1):
            rows.append(
                "".join("#" if arr[y][x] else "." for x in range(self._size))
            )
        return "\n".join(rows)
