"""The classical point quadtree (Finkel & Bentley 1974).

The paper contrasts regular decomposition (PR quadtree) with trees
"where the partition is determined explicitly by the data as it is
entered" — this structure.  Each stored point becomes an internal
partition point dividing its region into four quadrants, so the final
shape depends on insertion order.

Included as the data-defined member of the hierarchy family: its
occupancy census is degenerate (every node holds exactly one point),
which is precisely why the paper's population analysis targets the
*bucketing* trees instead.  It still supports the full query API so the
examples can compare search behavior across the two decomposition
styles.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Iterator, List, Optional, Tuple

from ..geometry import Point, Rect


class _PQNode:
    """One stored point plus four optional quadrant subtrees."""

    __slots__ = ("point", "rect", "depth", "children")

    def __init__(self, point: Point, rect: Rect, depth: int):
        self.point = point
        self.rect = rect
        self.depth = depth
        self.children: List[Optional["_PQNode"]] = [None, None, None, None]


class PointQuadtree:
    """Point quadtree over a half-open planar block.

    Quadrants are numbered with the same bitmask convention as the PR
    quadtree (bit 0 = x >= px, bit 1 = y >= py), but the split point is
    the *stored point*, not the block center.
    """

    def __init__(self, bounds: Optional[Rect] = None):
        if bounds is None:
            bounds = Rect.unit(2)
        if bounds.dim != 2:
            raise ValueError("point quadtree is planar; bounds must be 2-d")
        self._bounds = bounds
        self._root: Optional[_PQNode] = None
        self._size = 0

    @property
    def bounds(self) -> Rect:
        """The root block."""
        return self._bounds

    def __len__(self) -> int:
        return self._size

    def __contains__(self, p: Point) -> bool:
        return self.contains(p)

    @staticmethod
    def _quadrant(pivot: Point, p: Point) -> int:
        idx = 0
        if p.x >= pivot.x:
            idx |= 1
        if p.y >= pivot.y:
            idx |= 2
        return idx

    @staticmethod
    def _child_rect(rect: Rect, pivot: Point, idx: int) -> Rect:
        lo_x = pivot.x if idx & 1 else rect.lo.x
        hi_x = rect.hi.x if idx & 1 else pivot.x
        lo_y = pivot.y if idx & 2 else rect.lo.y
        hi_y = rect.hi.y if idx & 2 else pivot.y
        return Rect(Point(lo_x, lo_y), Point(hi_x, hi_y))

    def insert(self, p: Point) -> bool:
        """Insert a point; ``False`` if already present.

        Points on a partition line (equal x or y to an ancestor pivot)
        are routed to the >= side, consistent with the half-open block
        convention used across the package.  A point sharing a
        coordinate with its would-be region boundary would create a
        degenerate block and is rejected with ``ValueError`` — the
        workload generators produce continuous coordinates where this
        never occurs.
        """
        if not self._bounds.contains_point(p):
            raise ValueError(f"{p!r} outside tree bounds {self._bounds!r}")
        if self._root is None:
            self._root = _PQNode(p, self._bounds, 0)
            self._size = 1
            return True
        node = self._root
        while True:
            if node.point == p:
                return False
            idx = self._quadrant(node.point, p)
            child = node.children[idx]
            if child is None:
                rect = self._child_rect(node.rect, node.point, idx)
                if not rect.contains_point(p):
                    raise ValueError(
                        f"{p!r} degenerate against pivot {node.point!r}"
                    )
                node.children[idx] = _PQNode(p, rect, node.depth + 1)
                self._size += 1
                return True
            node = child

    def insert_many(self, points: Iterable[Point]) -> int:
        """Insert points in order; returns how many were new."""
        return sum(1 for p in points if self.insert(p))

    def delete(self, p: Point) -> bool:
        """Remove a point; returns ``False`` if absent.

        Deleting an internal point orphans its four subtrees; the
        classical fix (Finkel & Bentley's reinsertion method) is used:
        the deleted node's subtree points are collected and reinserted
        under the vacated slot.  Correct always; costlier than the
        Samet candidate-replacement optimization, which matters only
        for bulk deletion workloads.
        """
        parent: Optional[_PQNode] = None
        parent_idx = -1
        node = self._root
        while node is not None and node.point != p:
            parent = node
            parent_idx = self._quadrant(node.point, p)
            node = node.children[parent_idx]
        if node is None:
            return False
        survivors = [
            q for q in self._subtree_points(node) if q != p
        ]
        if parent is None:
            self._root = None
            self._size = 0
            for q in survivors:
                self.insert(q)
        else:
            parent.children[parent_idx] = None
            self._size -= len(survivors) + 1
            for q in survivors:
                self.insert(q)
        return True

    @staticmethod
    def _subtree_points(node: _PQNode) -> Iterator[Point]:
        stack = [node]
        while stack:
            cur = stack.pop()
            yield cur.point
            stack.extend(c for c in cur.children if c is not None)

    def contains(self, p: Point) -> bool:
        """Exact-match lookup."""
        node = self._root
        while node is not None:
            if node.point == p:
                return True
            node = node.children[self._quadrant(node.point, p)]
        return False

    def range_search(self, query: Rect) -> List[Point]:
        """All stored points inside the half-open ``query`` box."""
        out: List[Point] = []
        if self._root is None:
            return out
        stack = [self._root]
        while stack:
            node = stack.pop()
            if not node.rect.intersects(query):
                continue
            if query.contains_point(node.point):
                out.append(node.point)
            stack.extend(c for c in node.children if c is not None)
        return out

    def nearest(self, q: Point, k: int = 1) -> List[Point]:
        """The ``k`` stored points nearest to ``q``.

        Exact-distance ties are broken by point order (lexicographic
        coordinates), matching ``PRQuadtree.nearest`` — the answer is
        a pure function of the stored point set, never of insertion
        order or tree shape.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if self._root is None:
            return []
        frontier: List[Tuple[float, int, _PQNode]] = [(0.0, 0, self._root)]
        # max-heap keyed by (-distance, negated coords): the heap root
        # is the current worst candidate under (distance, point-order).
        best: List[Tuple[float, Tuple[float, ...], Point]] = []
        tie = 0

        while frontier:
            block_dist, _, node = heapq.heappop(frontier)
            if len(best) == k and block_dist > -best[0][0]:
                break
            p = node.point
            key = (-p.distance_to(q), tuple(-c for c in p.coords))
            if len(best) < k:
                heapq.heappush(best, key + (p,))
            elif key > (best[0][0], best[0][1]):
                heapq.heapreplace(best, key + (p,))
            for child in node.children:
                if child is not None:
                    tie += 1
                    heapq.heappush(
                        frontier,
                        (child.rect.distance_to_point(q), tie, child),
                    )
        return [
            p for _, _, p in sorted(best, key=lambda t: (-t[0], t[2].coords))
        ]

    def points(self) -> Iterator[Point]:
        """Iterate over all stored points (preorder)."""
        if self._root is None:
            return
        stack = [self._root]
        while stack:
            node = stack.pop()
            yield node.point
            stack.extend(c for c in node.children if c is not None)

    def height(self) -> int:
        """Depth of the deepest node; -1 for an empty tree."""
        if self._root is None:
            return -1
        best = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            best = max(best, node.depth)
            stack.extend(c for c in node.children if c is not None)
        return best

    def validate(self) -> None:
        """Check that every node's point is inside its region and that
        children's regions partition correctly around the pivot."""
        if self._root is None:
            assert self._size == 0
            return
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            count += 1
            assert node.rect.contains_point(node.point)
            for idx, child in enumerate(node.children):
                if child is None:
                    continue
                expected = self._child_rect(node.rect, node.point, idx)
                assert child.rect == expected
                assert child.depth == node.depth + 1
                stack.append(child)
        assert count == self._size
