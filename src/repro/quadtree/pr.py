"""The generalized PR quadtree (Orenstein 1982; Samet 1984).

A regular-decomposition bucketing tree for point data: a block splits
into ``2^dim`` congruent children whenever it holds more than
``capacity`` distinct points ("split until no block contains more than
m points", Section II of the paper).  With ``dim=2`` this is the PR
quadtree the paper analyzes; ``dim=3`` gives the PR octree, and
``dim=1`` a regular bintree on an interval.

The class supports the usual dynamic operations (insert, delete, exact
lookup, range and nearest-neighbor search) plus the *measurement*
operations the paper's experiments need: occupancy censuses, per-depth
censuses, and structural validation.

The paper's own implementation truncated trees at depth 9 — Table 3's
anomalous deepest-level occupancy is an artifact of that.  The
``max_depth`` option reproduces the artifact: a leaf at the depth limit
is allowed to overflow its capacity instead of splitting.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple, Union

from ..geometry import Point, Rect
from .census import DepthCensus, OccupancyCensus


class DuplicatePointError(ValueError):
    """Raised when inserting a point already present in the tree."""


class _Leaf:
    """A leaf block holding up to ``capacity`` distinct points."""

    __slots__ = ("rect", "depth", "points")

    def __init__(self, rect: Rect, depth: int):
        self.rect = rect
        self.depth = depth
        self.points: List[Point] = []


class _Internal:
    """An internal block with ``2^dim`` children in bitmask order."""

    __slots__ = ("rect", "depth", "children")

    def __init__(self, rect: Rect, depth: int, children: List["_Node"]):
        self.rect = rect
        self.depth = depth
        self.children = children


_Node = Union[_Leaf, _Internal]


class PRQuadtree:
    """Generalized PR quadtree over a half-open root block.

    Parameters
    ----------
    capacity:
        Node capacity m >= 1; a leaf splits when it would exceed this
        many points (unless pinned by ``max_depth``).
    bounds:
        Root block; defaults to the unit square ``[0,1)^dim``.
    dim:
        Dimensionality when ``bounds`` is not given (default 2).
    max_depth:
        Optional depth truncation.  ``None`` means unbounded; the
        splitting rule then requires all stored points to be distinct
        (guaranteed by the insert API), so splitting terminates.

    >>> tree = PRQuadtree(capacity=1)
    >>> tree.insert(Point(0.1, 0.1)); tree.insert(Point(0.9, 0.9))
    True
    True
    >>> len(tree), tree.leaf_count()
    (2, 4)
    """

    def __init__(
        self,
        capacity: int = 1,
        bounds: Optional[Rect] = None,
        dim: int = 2,
        max_depth: Optional[int] = None,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if bounds is None:
            bounds = Rect.unit(dim)
        elif bounds.dim != dim and dim != 2:
            raise ValueError(
                f"bounds dimension {bounds.dim} conflicts with dim={dim}"
            )
        if max_depth is not None and max_depth < 0:
            raise ValueError(f"max_depth must be >= 0, got {max_depth}")
        self._capacity = capacity
        self._bounds = bounds
        self._max_depth = max_depth
        self._root: _Node = _Leaf(bounds, 0)
        self._size = 0
        # structural-event counters (cheap ints; read by the obs layer)
        self._splits = 0
        self._merges = 0
        self._replace_scans = 0
        self._max_depth_seen = 0

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------

    @property
    def capacity(self) -> int:
        """Node capacity m."""
        return self._capacity

    @property
    def bounds(self) -> Rect:
        """The root block."""
        return self._bounds

    @property
    def dim(self) -> int:
        """Dimensionality of the space."""
        return self._bounds.dim

    @property
    def fanout(self) -> int:
        """Children per split: ``2^dim`` (4 for the planar quadtree)."""
        return 1 << self._bounds.dim

    @property
    def max_depth(self) -> Optional[int]:
        """Depth truncation limit, or ``None`` if unbounded."""
        return self._max_depth

    @property
    def split_count(self) -> int:
        """Leaf splits performed over the tree's lifetime."""
        return self._splits

    @property
    def merge_count(self) -> int:
        """Internal-node collapses performed over the tree's lifetime."""
        return self._merges

    @property
    def replace_scans(self) -> int:
        """Nodes examined by the fallback root-walk in ``_replace``.

        Splits and merges thread the parent through, so this stays 0 in
        normal operation — the regression guard for the historical
        quadratic clustered-insertion behavior.
        """
        return self._replace_scans

    @property
    def max_depth_reached(self) -> int:
        """Deepest level any split has created (0 for an unsplit tree)."""
        return self._max_depth_seen

    def __len__(self) -> int:
        return self._size

    def __contains__(self, p: Point) -> bool:
        return self.contains(p)

    # ------------------------------------------------------------------
    # dynamic operations
    # ------------------------------------------------------------------

    def insert(self, p: Point) -> bool:
        """Insert a point; returns ``True``.

        Returns ``False`` (and leaves the tree unchanged) if the point
        is already stored — the PR splitting rule is defined on
        *distinct* points, so duplicates are rejected rather than
        stored twice.  Raises ``ValueError`` if ``p`` is outside the
        root block.
        """
        if not self._bounds.contains_point(p):
            raise ValueError(f"{p!r} outside tree bounds {self._bounds!r}")
        parent: Optional[_Internal] = None
        node = self._root
        while isinstance(node, _Internal):
            parent = node
            node = node.children[node.rect.quadrant_index(p)]
        if p in node.points:
            return False
        node.points.append(p)
        self._size += 1
        if len(node.points) > self._capacity and not self._at_depth_limit(node):
            self._split(node, parent)
        return True

    def insert_many(self, points: Iterable[Point]) -> int:
        """Insert points in order; returns how many were new."""
        inserted = 0
        for p in points:
            if self.insert(p):
                inserted += 1
        return inserted

    def contains(self, p: Point) -> bool:
        """Exact-match lookup."""
        if not self._bounds.contains_point(p):
            return False
        return p in self._descend(p).points

    def delete(self, p: Point) -> bool:
        """Remove a point; returns ``False`` if absent.

        After removal, any internal node whose subtree holds at most
        ``capacity`` points collapses back into a leaf, so the tree a
        delete leaves behind is exactly the tree a fresh bulk build of
        the remaining points would produce.
        """
        if not self._bounds.contains_point(p):
            return False
        path: List[_Internal] = []
        node = self._root
        while isinstance(node, _Internal):
            path.append(node)
            node = node.children[node.rect.quadrant_index(p)]
        if p not in node.points:
            return False
        node.points.remove(p)
        self._size -= 1
        self._merge_path(path)
        return True

    def _merge_path(self, path: List[_Internal]) -> None:
        """Collapse ancestors that have become mergeable, deepest first.

        ``path`` is the root-to-leaf chain of internal ancestors, so
        each ancestor's parent is its predecessor in the list — no
        root walk is needed to splice the merged leaf in.
        """
        for i in range(len(path) - 1, -1, -1):
            ancestor = path[i]
            total = self._subtree_size(ancestor)
            if total > self._capacity:
                break
            merged = _Leaf(ancestor.rect, ancestor.depth)
            merged.points = list(self._subtree_points(ancestor))
            self._replace(ancestor, merged, path[i - 1] if i > 0 else None)
            self._merges += 1

    def _replace(
        self, old: _Node, new: _Node, parent: Optional[_Internal] = None
    ) -> None:
        """Splice ``new`` in where ``old`` sits.

        Split and merge both know ``old``'s parent, making replacement
        O(fanout).  The parentless fallback walks from the root (and
        counts the nodes it scans in :attr:`replace_scans`); before
        parents were threaded through, that walk ran on *every* split,
        making clustered insertion quadratic in depth.
        """
        if parent is not None:
            for i, child in enumerate(parent.children):
                if child is old:
                    parent.children[i] = new
                    return
            raise AssertionError(
                "parent does not own the node to replace"
            )  # pragma: no cover
        if old is self._root:
            self._root = new
            return
        # Walk down to find old's parent; paths are short (tree depth).
        node = self._root
        while isinstance(node, _Internal):
            self._replace_scans += 1
            for i, child in enumerate(node.children):
                if child is old:
                    node.children[i] = new
                    return
            node = node.children[node.rect.quadrant_index(old.rect.center)]
        raise AssertionError("node to replace not found")  # pragma: no cover

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def range_search(self, query: Rect) -> List[Point]:
        """All stored points inside the half-open ``query`` box."""
        if query.dim != self.dim:
            raise ValueError(f"query dimension {query.dim} != tree dim {self.dim}")
        out: List[Point] = []
        stack: List[_Node] = [self._root]
        while stack:
            node = stack.pop()
            if not node.rect.intersects(query):
                continue
            if isinstance(node, _Leaf):
                out.extend(p for p in node.points if query.contains_point(p))
            else:
                stack.extend(node.children)
        return out

    def nearest(self, q: Point, k: int = 1) -> List[Point]:
        """The ``k`` stored points nearest to ``q`` (best-first search).

        Results are ordered by increasing distance, with exact-distance
        ties broken by point order (lexicographic coordinates) — the
        answer is a pure function of the stored point *set*, never of
        insertion order or tree shape.  Fewer than ``k`` points are
        returned if the tree holds fewer.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if q.dim != self.dim:
            raise ValueError(f"query dimension {q.dim} != tree dim {self.dim}")
        # Best-first over blocks; candidates live in a max-heap keyed by
        # (-distance, negated coords) so the heap root is the current
        # worst candidate under the (distance, point-order) total order.
        frontier: List[Tuple[float, int, _Node]] = []
        tie = 0
        heapq.heappush(frontier, (0.0, tie, self._root))
        best: List[Tuple[float, Tuple[float, ...], Point]] = []

        while frontier:
            block_dist, _, node = heapq.heappop(frontier)
            if len(best) == k and block_dist > -best[0][0]:
                break
            if isinstance(node, _Leaf):
                for p in node.points:
                    key = (-p.distance_to(q), tuple(-c for c in p.coords))
                    if len(best) < k:
                        heapq.heappush(best, key + (p,))
                    elif key > (best[0][0], best[0][1]):
                        heapq.heapreplace(best, key + (p,))
            else:
                for child in node.children:
                    tie += 1
                    heapq.heappush(
                        frontier,
                        (child.rect.distance_to_point(q), tie, child),
                    )
        return [p for _, _, p in sorted(best, key=lambda t: (-t[0], t[2].coords))]

    def partial_match(
        self,
        fixed: Mapping[int, float],
        stats: Optional[Dict[str, int]] = None,
    ) -> List[Point]:
        """All stored points whose ``fixed`` coordinates match exactly.

        ``fixed`` maps axis index -> required value; the free axes are
        unconstrained, so the query region is an axis-aligned
        hyperplane.  The walk visits exactly the blocks intersecting
        that hyperplane — one child per fixed axis at every split —
        which is the access pattern whose cost the partial-match
        scaling laws describe.  Pass a ``stats`` dict to receive the
        visit counts (``nodes``, ``leaves``, ``scanned``).
        """
        if not fixed:
            raise ValueError("partial match needs at least one fixed axis")
        axes = sorted(fixed)
        for a in axes:
            if not 0 <= a < self.dim:
                raise ValueError(f"axis {a} out of range for dim {self.dim}")
        values = [float(fixed[a]) for a in axes]
        nodes = leaves = scanned = 0
        out: List[Point] = []
        root = self._root
        inside = all(
            root.rect.lo.coords[a] <= v < root.rect.hi.coords[a]
            for a, v in zip(axes, values)
        )
        stack: List[_Node] = [root] if inside else []
        while stack:
            node = stack.pop()
            nodes += 1
            if isinstance(node, _Leaf):
                leaves += 1
                scanned += len(node.points)
                out.extend(
                    p
                    for p in node.points
                    if all(p.coords[a] == v for a, v in zip(axes, values))
                )
            else:
                for child in node.children:
                    if all(
                        child.rect.lo.coords[a] <= v < child.rect.hi.coords[a]
                        for a, v in zip(axes, values)
                    ):
                        stack.append(child)
        if stats is not None:
            stats["nodes"] = nodes
            stats["leaves"] = leaves
            stats["scanned"] = scanned
        return out

    def points(self) -> Iterator[Point]:
        """Iterate over all stored points (block order)."""
        stack: List[_Node] = [self._root]
        while stack:
            node = stack.pop()
            if isinstance(node, _Leaf):
                yield from node.points
            else:
                stack.extend(node.children)

    # ------------------------------------------------------------------
    # measurement — the paper's probes
    # ------------------------------------------------------------------

    def leaves(self) -> Iterator[Tuple[Rect, int, int]]:
        """Yield ``(block, depth, occupancy)`` for every leaf."""
        stack: List[_Node] = [self._root]
        while stack:
            node = stack.pop()
            if isinstance(node, _Leaf):
                yield (node.rect, node.depth, len(node.points))
            else:
                stack.extend(node.children)

    def leaf_count(self) -> int:
        """Number of leaf blocks."""
        return sum(1 for _ in self.leaves())

    def node_count(self) -> int:
        """Total nodes, internal and leaf."""
        count = 0
        stack: List[_Node] = [self._root]
        while stack:
            node = stack.pop()
            count += 1
            if isinstance(node, _Internal):
                stack.extend(node.children)
        return count

    def height(self) -> int:
        """Depth of the deepest leaf."""
        return max(depth for _, depth, _ in self.leaves())

    def occupancy_census(self, clamp_overflow: bool = True) -> OccupancyCensus:
        """Census of leaves by occupancy.

        With ``max_depth`` set, a pinned leaf can exceed ``capacity``;
        ``clamp_overflow`` folds such leaves into the top class (matching
        the paper's implementation, whose truncated nodes still count as
        "full").  Pass ``False`` to raise instead, as an integrity check.
        """
        occupancies = []
        for _, _, occ in self.leaves():
            if occ > self._capacity:
                if not clamp_overflow:
                    raise ValueError(
                        f"leaf occupancy {occ} exceeds capacity {self._capacity}"
                    )
                occ = self._capacity
            occupancies.append(occ)
        return OccupancyCensus.from_occupancies(occupancies, self._capacity)

    def depth_census(self, clamp_overflow: bool = True) -> DepthCensus:
        """Census of leaves by (depth, occupancy) — feeds Table 3."""
        pairs = []
        for _, depth, occ in self.leaves():
            if occ > self._capacity:
                if not clamp_overflow:
                    raise ValueError(
                        f"leaf occupancy {occ} exceeds capacity {self._capacity}"
                    )
                occ = self._capacity
            pairs.append((depth, occ))
        return DepthCensus.from_leaves(pairs, self._capacity)

    def validate(self) -> None:
        """Check structural invariants; raises ``AssertionError`` on breakage.

        - every leaf's points lie inside its block;
        - no leaf exceeds capacity unless pinned at ``max_depth``;
        - no internal node could be merged into a legal leaf
          (otherwise the tree over-split or under-merged);
        - children tile the parent block exactly;
        - the stored size matches the number of points.
        """
        total = 0
        stack: List[_Node] = [self._root]
        while stack:
            node = stack.pop()
            if isinstance(node, _Leaf):
                total += len(node.points)
                for p in node.points:
                    assert node.rect.contains_point(p), (
                        f"point {p!r} outside its leaf block {node.rect!r}"
                    )
                assert len(set(node.points)) == len(node.points), (
                    "duplicate points in a leaf"
                )
                if len(node.points) > self._capacity:
                    assert self._at_depth_limit(node), (
                        f"unpinned leaf over capacity: {len(node.points)}"
                    )
            else:
                assert node.children[0].depth == node.depth + 1
                expected = node.rect.split()
                got = [c.rect for c in node.children]
                assert got == expected, "children do not tile the parent"
                assert self._subtree_size(node) > self._capacity, (
                    "internal node should have merged into a leaf"
                )
                stack.extend(node.children)
        assert total == self._size, f"size {self._size} != counted {total}"

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _descend(self, p: Point) -> _Leaf:
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[node.rect.quadrant_index(p)]
        return node

    def _at_depth_limit(self, leaf: _Leaf) -> bool:
        """A leaf pins (overflows instead of splitting) at the explicit
        depth limit, or when float precision makes its block too thin
        to halve — the graceful floor for pathologically close points."""
        if self._max_depth is not None and leaf.depth >= self._max_depth:
            return True
        return not leaf.rect.is_splittable

    def _split(self, leaf: _Leaf, parent: Optional[_Internal] = None) -> None:
        """Split an over-full leaf, recursing while a child overflows.

        This is the paper's transformation: a full node absorbing one
        more point is replaced by ``2^dim`` children, and if all points
        land in the same quadrant the split repeats (the ``P_{m+1}``
        term of the recurrence for t_m).  Each pending leaf carries its
        parent so the splice is O(1) — clustered data drives splits
        thousands of levels deep, where a walk from the root per split
        used to make insertion quadratic.
        """
        pending: List[Tuple[_Leaf, Optional[_Internal]]] = [(leaf, parent)]
        while pending:
            cur, cur_parent = pending.pop()
            children: List[_Node] = [
                _Leaf(cur.rect.child(i), cur.depth + 1)
                for i in range(self.fanout)
            ]
            for p in cur.points:
                child = children[cur.rect.quadrant_index(p)]
                assert isinstance(child, _Leaf)
                child.points.append(p)
            node = _Internal(cur.rect, cur.depth, children)
            self._replace(cur, node, cur_parent)
            self._splits += 1
            if cur.depth + 1 > self._max_depth_seen:
                self._max_depth_seen = cur.depth + 1
            for child in children:
                assert isinstance(child, _Leaf)
                if len(child.points) > self._capacity and not self._at_depth_limit(
                    child
                ):
                    pending.append((child, node))

    def _subtree_size(self, node: _Node) -> int:
        # Iterative: degenerate point sets can drive trees thousands of
        # levels deep, past Python's recursion limit.
        total = 0
        stack = [node]
        while stack:
            cur = stack.pop()
            if isinstance(cur, _Leaf):
                total += len(cur.points)
            else:
                stack.extend(cur.children)
        return total

    def _subtree_points(self, node: _Node) -> Iterator[Point]:
        stack = [node]
        while stack:
            cur = stack.pop()
            if isinstance(cur, _Leaf):
                yield from cur.points
            else:
                stack.extend(cur.children)
