"""The PM quadtree family (Samet & Webber 1985).

Vertex-based quadtrees for polygonal maps (planar subdivisions), cited
by the paper alongside the PMR quadtree.  The three members differ in
their leaf *validity rule*, from strictest to loosest:

- **PM1**: (1) at most one vertex per block; (2) a block with a vertex
  v holds only edges incident to v; (3) a vertex-free block holds at
  most one edge.
- **PM2**: like PM1 except a vertex-free block may hold several edges
  *if they all share a common endpoint* (the vertex lies outside).
- **PM3**: only rule (1) — at most one vertex per block; edges are
  unrestricted.

Blocks split until valid.  Unlike the PMR rule the decomposition is a
function of the map alone (no insertion-order effects), but the depth
needed near close vertices is data-driven, so a ``max_depth`` guard is
enforced.  Looser rules need shallower trees: PM3 <= PM2 <= PM1 in
both height and leaf count, a relation the tests assert.

Input must be a planar subdivision: segments that intersect only at
shared endpoints.  ``insert`` verifies this against the stored map and
rejects violators.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Tuple, Union

from ..geometry import Point, Rect, Segment


class _Leaf:
    __slots__ = ("rect", "depth", "segments")

    def __init__(self, rect: Rect, depth: int):
        self.rect = rect
        self.depth = depth
        self.segments: List[Segment] = []


class _Internal:
    __slots__ = ("rect", "depth", "children")

    def __init__(self, rect: Rect, depth: int, children: List["_Node"]):
        self.rect = rect
        self.depth = depth
        self.children = children


_Node = Union[_Leaf, _Internal]


class PM1Quadtree:
    """PM1 quadtree over a half-open planar block.

    Parameters
    ----------
    bounds:
        Root block (default unit square).
    max_depth:
        Hard depth bound; a map needing finer resolution than this
        raises ``ValueError`` at insert time (the offending insert is
        rolled back).

    Subclasses override :meth:`_is_valid_leaf` to obtain the looser
    PM2/PM3 rules; everything else (construction, queries, deletion,
    validation) is rule-independent.
    """

    def __init__(self, bounds: Optional[Rect] = None, max_depth: int = 16):
        if bounds is None:
            bounds = Rect.unit(2)
        if bounds.dim != 2:
            raise ValueError("PM1 quadtree is planar; bounds must be 2-d")
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        self._bounds = bounds
        self._max_depth = max_depth
        self._root: _Node = _Leaf(bounds, 0)
        self._segments: List[Segment] = []

    @property
    def bounds(self) -> Rect:
        """The root block."""
        return self._bounds

    @property
    def max_depth(self) -> int:
        """The hard depth bound."""
        return self._max_depth

    def __len__(self) -> int:
        return len(self._segments)

    def __contains__(self, seg: Segment) -> bool:
        return seg in self._segments

    # ------------------------------------------------------------------
    # the PM1 validity rule
    # ------------------------------------------------------------------

    @staticmethod
    def _vertices_in(rect: Rect, segments: List[Segment]) -> List[Point]:
        """Distinct segment endpoints lying inside the half-open block."""
        out: List[Point] = []
        for seg in segments:
            for endpoint in (seg.a, seg.b):
                if rect.contains_point(endpoint) and endpoint not in out:
                    out.append(endpoint)
        return out

    @classmethod
    def _is_valid_leaf(cls, rect: Rect, segments: List[Segment]) -> bool:
        vertices = cls._vertices_in(rect, segments)
        if len(vertices) > 1:
            return False
        if len(vertices) == 1:
            vertex = vertices[0]
            return all(
                seg.a == vertex or seg.b == vertex for seg in segments
            )
        return len(segments) <= 1

    @staticmethod
    def _share_an_endpoint(segments: List[Segment]) -> bool:
        """True iff all segments have some endpoint in common."""
        if len(segments) <= 1:
            return True
        shared = {segments[0].a, segments[0].b}
        for seg in segments[1:]:
            shared &= {seg.a, seg.b}
            if not shared:
                return False
        return True

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def insert(self, seg: Segment) -> bool:
        """Insert a map edge; ``False`` if an equal edge is present.

        Raises ``ValueError`` if the edge crosses an existing edge
        anywhere other than a shared endpoint (the input would not be a
        planar subdivision), or if the map would need blocks deeper
        than ``max_depth``.
        """
        if not seg.intersects_rect(self._bounds):
            raise ValueError(f"{seg!r} outside map bounds {self._bounds!r}")
        if seg in self._segments:
            return False
        for other in self._segments:
            crossing = seg.intersection_point(other)
            if crossing is None:
                continue
            # legal only at a vertex shared by both edges (compare with
            # tolerance: the intersection is computed in floating point)
            at_shared_vertex = any(
                crossing.distance_to(mine) < 1e-9
                and any(
                    crossing.distance_to(theirs) < 1e-9
                    for theirs in (other.a, other.b)
                )
                for mine in (seg.a, seg.b)
            )
            if not at_shared_vertex:
                raise ValueError(
                    f"{seg!r} crosses {other!r} at {crossing!r}: "
                    "not a planar subdivision"
                )
        self._segments.append(seg)
        try:
            self._root = self._rebuild(self._root, seg)
        except ValueError:
            self._segments.pop()
            raise
        return True

    def insert_many(self, segments: Iterable[Segment]) -> int:
        """Insert edges in order; returns how many were new."""
        return sum(1 for s in segments if self.insert(s))

    def delete(self, seg: Segment) -> bool:
        """Remove an edge and re-merge now-valid blocks."""
        if seg not in self._segments:
            return False
        self._segments.remove(seg)
        self._root = self._remove(self._root, seg)
        return True

    def _rebuild(self, node: _Node, seg: Segment) -> _Node:
        """Push one new segment down, splitting invalidated leaves."""
        if not seg.crosses_interior(node.rect) and not (
            node.rect.contains_point(seg.a)
            or node.rect.contains_point(seg.b)
        ):
            return node
        if isinstance(node, _Internal):
            node.children = [
                self._rebuild(child, seg) for child in node.children
            ]
            return node
        segments = node.segments + [seg]
        return self._build_block(node.rect, node.depth, segments)

    def _build_block(
        self, rect: Rect, depth: int, segments: List[Segment]
    ) -> _Node:
        relevant = [
            s
            for s in segments
            if s.crosses_interior(rect)
            or rect.contains_point(s.a)
            or rect.contains_point(s.b)
        ]
        if self._is_valid_leaf(rect, relevant):
            leaf = _Leaf(rect, depth)
            leaf.segments = relevant
            return leaf
        if depth >= self._max_depth or not rect.is_splittable:
            raise ValueError(
                f"map needs blocks deeper than max_depth={self._max_depth}"
            )
        children = [
            self._build_block(rect.child(i), depth + 1, relevant)
            for i in range(4)
        ]
        return _Internal(rect, depth, children)

    def _remove(self, node: _Node, seg: Segment) -> _Node:
        if isinstance(node, _Leaf):
            if seg in node.segments:
                node.segments.remove(seg)
            return node
        node.children = [self._remove(c, seg) for c in node.children]
        if all(isinstance(c, _Leaf) for c in node.children):
            merged: List[Segment] = []
            for child in node.children:
                assert isinstance(child, _Leaf)
                for s in child.segments:
                    if s not in merged:
                        merged.append(s)
            if self._is_valid_leaf(node.rect, merged):
                leaf = _Leaf(node.rect, node.depth)
                leaf.segments = merged
                return leaf
        return node

    # ------------------------------------------------------------------
    # queries and measurement
    # ------------------------------------------------------------------

    def segments(self) -> List[Segment]:
        """All stored edges, in insertion order."""
        return list(self._segments)

    def stabbing_query(self, p: Point) -> List[Segment]:
        """Edges stored in the leaf block containing ``p``."""
        if not self._bounds.contains_point(p):
            return []
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[node.rect.quadrant_index(p)]
        return list(node.segments)

    def vertex_at(self, p: Point) -> Optional[Point]:
        """The map vertex in ``p``'s leaf block, if any."""
        if not self._bounds.contains_point(p):
            return None
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[node.rect.quadrant_index(p)]
        vertices = self._vertices_in(node.rect, node.segments)
        return vertices[0] if vertices else None

    def leaves(self) -> Iterator[Tuple[Rect, int, int]]:
        """Yield ``(block, depth, edge-count)`` for every leaf."""
        stack: List[_Node] = [self._root]
        while stack:
            node = stack.pop()
            if isinstance(node, _Leaf):
                yield (node.rect, node.depth, len(node.segments))
            else:
                stack.extend(node.children)

    def leaf_count(self) -> int:
        """Number of leaf blocks."""
        return sum(1 for _ in self.leaves())

    def height(self) -> int:
        """Depth of the deepest leaf."""
        return max(depth for _, depth, _ in self.leaves())

    def validate(self) -> None:
        """Invariants: every leaf satisfies the PM1 rule; every edge is
        stored in exactly the leaves it touches; children tile parents."""
        stack: List[_Node] = [self._root]
        while stack:
            node = stack.pop()
            if isinstance(node, _Leaf):
                assert self._is_valid_leaf(node.rect, node.segments), (
                    f"leaf at {node.rect!r} violates the PM1 rule"
                )
                for s in self._segments:
                    touches = (
                        s.crosses_interior(node.rect)
                        or node.rect.contains_point(s.a)
                        or node.rect.contains_point(s.b)
                    )
                    assert (s in node.segments) == touches
            else:
                assert [c.rect for c in node.children] == node.rect.split()
                stack.extend(node.children)


class PM2Quadtree(PM1Quadtree):
    """PM2 quadtree: vertex-free blocks may hold several edges sharing
    a common (external) endpoint — the typical "spokes near a hub"
    relaxation."""

    @classmethod
    def _is_valid_leaf(cls, rect: Rect, segments: List[Segment]) -> bool:
        vertices = cls._vertices_in(rect, segments)
        if len(vertices) > 1:
            return False
        if len(vertices) == 1:
            vertex = vertices[0]
            return all(
                seg.a == vertex or seg.b == vertex for seg in segments
            )
        return cls._share_an_endpoint(segments)


class PM3Quadtree(PM1Quadtree):
    """PM3 quadtree: only the one-vertex-per-block rule; vertex-free
    blocks hold any number of passing edges."""

    @classmethod
    def _is_valid_leaf(cls, rect: Rect, segments: List[Segment]) -> bool:
        return len(cls._vertices_in(rect, segments)) <= 1
