"""The PR bintree (Knowlton 1980; Samet & Tamminen 1984).

A regular-decomposition bucketing tree that halves one axis at a time,
cycling through the dimensions by depth.  Structurally it is the
binary-fanout member of the family the paper's population analysis
covers: a split scatters the m+1 points of an overflowing node into
**two** buckets instead of ``2^dim``, so its transform matrix is the
``buckets=2`` instance of :func:`repro.core.transform.transform_matrix`.

The implementation mirrors :class:`repro.quadtree.PRQuadtree` but with
binary splits; it shares the census/measurement interface so the same
experiment harness can drive both.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Tuple, Union

from ..geometry import Point, Rect
from .census import DepthCensus, OccupancyCensus


class _Leaf:
    __slots__ = ("rect", "depth", "points")

    def __init__(self, rect: Rect, depth: int):
        self.rect = rect
        self.depth = depth
        self.points: List[Point] = []


class _Internal:
    __slots__ = ("rect", "depth", "axis", "low", "high")

    def __init__(
        self, rect: Rect, depth: int, axis: int, low: "_Node", high: "_Node"
    ):
        self.rect = rect
        self.depth = depth
        self.axis = axis
        self.low = low
        self.high = high


_Node = Union[_Leaf, _Internal]


class PRBintree:
    """PR bintree with node capacity m over a half-open root block.

    The split axis at depth ``k`` is ``k % dim``, the classical
    round-robin rule; after ``dim`` consecutive splits a block has been
    quartered exactly like one quadtree split.
    """

    def __init__(
        self,
        capacity: int = 1,
        bounds: Optional[Rect] = None,
        dim: int = 2,
        max_depth: Optional[int] = None,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if bounds is None:
            bounds = Rect.unit(dim)
        if max_depth is not None and max_depth < 0:
            raise ValueError(f"max_depth must be >= 0, got {max_depth}")
        self._capacity = capacity
        self._bounds = bounds
        self._max_depth = max_depth
        self._root: _Node = _Leaf(bounds, 0)
        self._size = 0

    @property
    def capacity(self) -> int:
        """Node capacity m."""
        return self._capacity

    @property
    def bounds(self) -> Rect:
        """The root block."""
        return self._bounds

    @property
    def dim(self) -> int:
        """Dimensionality of the space."""
        return self._bounds.dim

    @property
    def fanout(self) -> int:
        """Children per split — always 2 for a bintree."""
        return 2

    def __len__(self) -> int:
        return self._size

    def __contains__(self, p: Point) -> bool:
        return self.contains(p)

    # ------------------------------------------------------------------

    def insert(self, p: Point) -> bool:
        """Insert a distinct point; ``False`` if already present."""
        if not self._bounds.contains_point(p):
            raise ValueError(f"{p!r} outside tree bounds {self._bounds!r}")
        leaf, path = self._descend(p)
        if p in leaf.points:
            return False
        leaf.points.append(p)
        self._size += 1
        if len(leaf.points) > self._capacity and not self._at_depth_limit(leaf):
            self._split(leaf, path)
        return True

    def insert_many(self, points: Iterable[Point]) -> int:
        """Insert points in order; returns how many were new."""
        return sum(1 for p in points if self.insert(p))

    def contains(self, p: Point) -> bool:
        """Exact-match lookup."""
        if not self._bounds.contains_point(p):
            return False
        leaf, _ = self._descend(p)
        return p in leaf.points

    def range_search(self, query: Rect) -> List[Point]:
        """All stored points inside the half-open ``query`` box."""
        out: List[Point] = []
        stack: List[_Node] = [self._root]
        while stack:
            node = stack.pop()
            if not node.rect.intersects(query):
                continue
            if isinstance(node, _Leaf):
                out.extend(p for p in node.points if query.contains_point(p))
            else:
                stack.append(node.low)
                stack.append(node.high)
        return out

    def points(self) -> Iterator[Point]:
        """Iterate over all stored points."""
        stack: List[_Node] = [self._root]
        while stack:
            node = stack.pop()
            if isinstance(node, _Leaf):
                yield from node.points
            else:
                stack.append(node.low)
                stack.append(node.high)

    # ------------------------------------------------------------------

    def leaves(self) -> Iterator[Tuple[Rect, int, int]]:
        """Yield ``(block, depth, occupancy)`` for every leaf."""
        stack: List[_Node] = [self._root]
        while stack:
            node = stack.pop()
            if isinstance(node, _Leaf):
                yield (node.rect, node.depth, len(node.points))
            else:
                stack.append(node.low)
                stack.append(node.high)

    def leaf_count(self) -> int:
        """Number of leaf blocks."""
        return sum(1 for _ in self.leaves())

    def height(self) -> int:
        """Depth of the deepest leaf."""
        return max(depth for _, depth, _ in self.leaves())

    def occupancy_census(self, clamp_overflow: bool = True) -> OccupancyCensus:
        """Census of leaves by occupancy (see PRQuadtree for semantics)."""
        occupancies = []
        for _, _, occ in self.leaves():
            if occ > self._capacity:
                if not clamp_overflow:
                    raise ValueError(
                        f"leaf occupancy {occ} exceeds capacity {self._capacity}"
                    )
                occ = self._capacity
            occupancies.append(occ)
        return OccupancyCensus.from_occupancies(occupancies, self._capacity)

    def depth_census(self, clamp_overflow: bool = True) -> DepthCensus:
        """Census of leaves by (depth, occupancy)."""
        pairs = []
        for _, depth, occ in self.leaves():
            if occ > self._capacity:
                if not clamp_overflow:
                    raise ValueError(
                        f"leaf occupancy {occ} exceeds capacity {self._capacity}"
                    )
                occ = self._capacity
            pairs.append((depth, occ))
        return DepthCensus.from_leaves(pairs, self._capacity)

    def validate(self) -> None:
        """Structural invariant check; raises ``AssertionError``."""
        total = 0
        stack: List[_Node] = [self._root]
        while stack:
            node = stack.pop()
            if isinstance(node, _Leaf):
                total += len(node.points)
                for p in node.points:
                    assert node.rect.contains_point(p)
                if len(node.points) > self._capacity:
                    assert self._at_depth_limit(node)
            else:
                assert node.axis == node.depth % self.dim
                lo, hi = node.rect.split_binary(node.axis)
                assert node.low.rect == lo and node.high.rect == hi
                stack.append(node.low)
                stack.append(node.high)
        assert total == self._size

    # ------------------------------------------------------------------

    def _descend(self, p: Point) -> Tuple[_Leaf, List[_Internal]]:
        path: List[_Internal] = []
        node = self._root
        while isinstance(node, _Internal):
            path.append(node)
            mid = node.rect.center[node.axis]
            node = node.high if p[node.axis] >= mid else node.low
        return node, path

    def _at_depth_limit(self, leaf: _Leaf) -> bool:
        """A leaf pins at the explicit depth limit, or when its block is
        too thin to halve on the scheduled axis without degenerating."""
        if self._max_depth is not None and leaf.depth >= self._max_depth:
            return True
        return not leaf.rect.is_splittable_on(leaf.depth % self.dim)

    def _split(self, leaf: _Leaf, path: List[_Internal]) -> None:
        pending = [(leaf, path[-1] if path else None)]
        while pending:
            cur, parent = pending.pop()
            axis = cur.depth % self.dim
            lo_rect, hi_rect = cur.rect.split_binary(axis)
            low = _Leaf(lo_rect, cur.depth + 1)
            high = _Leaf(hi_rect, cur.depth + 1)
            mid = cur.rect.center[axis]
            for p in cur.points:
                (high if p[axis] >= mid else low).points.append(p)
            internal = _Internal(cur.rect, cur.depth, axis, low, high)
            if parent is None:
                self._root = internal
            elif parent.low is cur:
                parent.low = internal
            else:
                parent.high = internal
            for child in (low, high):
                if len(child.points) > self._capacity and not self._at_depth_limit(
                    child
                ):
                    pending.append((child, internal))
