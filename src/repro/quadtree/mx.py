"""The MX quadtree (Samet's taxonomy of point quadtrees).

The third decomposition style the quadtree survey [Same84a]
distinguishes: space is treated as a ``2^k x 2^k`` raster and every
stored point occupies the full-resolution cell containing it.  The
tree subdivides *regularly* (like the PR quadtree) but always down to
the fixed depth ``k`` along any occupied path, so node shape encodes
only *where* data is, never how much — occupancy per leaf is exactly
one cell.

Included as a contrast structure: its census is degenerate (every data
leaf holds one item), which makes it a useful foil in the examples for
why the population analysis targets *bucketing* trees.  It still
supports the full dynamic API.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple, Union

from ..geometry import Point, Rect


class _Leaf:
    """A full-resolution cell; ``point`` is None for an empty leaf."""

    __slots__ = ("rect", "depth", "point")

    def __init__(self, rect: Rect, depth: int, point: Optional[Point] = None):
        self.rect = rect
        self.depth = depth
        self.point = point


class _Internal:
    __slots__ = ("rect", "depth", "children")

    def __init__(self, rect: Rect, depth: int,
                 children: List[Optional["_Node"]]):
        self.rect = rect
        self.depth = depth
        self.children = children


_Node = Union[_Leaf, _Internal]


class MXQuadtree:
    """MX quadtree over a half-open planar block at fixed resolution.

    Parameters
    ----------
    resolution:
        Tree depth k; the grid is ``2^k`` cells on a side.
    bounds:
        Root block (default unit square).

    Two points in the same raster cell collide: the second insert
    returns ``False`` (MX identifies a point with its cell).
    """

    def __init__(self, resolution: int = 8, bounds: Optional[Rect] = None):
        if resolution < 1:
            raise ValueError(f"resolution must be >= 1, got {resolution}")
        if bounds is None:
            bounds = Rect.unit(2)
        if bounds.dim != 2:
            raise ValueError("MX quadtree is planar; bounds must be 2-d")
        self._resolution = resolution
        self._bounds = bounds
        self._root: Optional[_Node] = None
        self._size = 0

    @property
    def resolution(self) -> int:
        """Tree depth k (grid is 2^k cells on a side)."""
        return self._resolution

    @property
    def bounds(self) -> Rect:
        """The root block."""
        return self._bounds

    def __len__(self) -> int:
        return self._size

    def __contains__(self, p: Point) -> bool:
        return self.contains(p)

    # ------------------------------------------------------------------

    def cell_of(self, p: Point) -> Rect:
        """The full-resolution raster cell containing ``p``."""
        if not self._bounds.contains_point(p):
            raise ValueError(f"{p!r} outside bounds {self._bounds!r}")
        rect = self._bounds
        for _ in range(self._resolution):
            rect = rect.child(rect.quadrant_index(p))
        return rect

    def insert(self, p: Point) -> bool:
        """Insert ``p``; ``False`` if its raster cell is occupied."""
        if not self._bounds.contains_point(p):
            raise ValueError(f"{p!r} outside bounds {self._bounds!r}")
        if self._root is None:
            self._root = self._make_path(self._bounds, 0, p)
            self._size += 1
            return True
        node = self._root
        while isinstance(node, _Internal):
            idx = node.rect.quadrant_index(p)
            child = node.children[idx]
            if child is None:
                node.children[idx] = self._make_path(
                    node.rect.child(idx), node.depth + 1, p
                )
                self._size += 1
                return True
            node = child
        # reached a full-resolution leaf: its cell is p's cell
        if node.point is not None:
            return False
        node.point = p
        self._size += 1
        return True

    def _make_path(self, rect: Rect, depth: int, p: Point) -> _Node:
        """A chain of internal nodes down to the resolution leaf."""
        if depth == self._resolution:
            return _Leaf(rect, depth, p)
        children: List[Optional[_Node]] = [None, None, None, None]
        idx = rect.quadrant_index(p)
        children[idx] = self._make_path(rect.child(idx), depth + 1, p)
        return _Internal(rect, depth, children)

    def insert_many(self, points) -> int:
        """Insert points; returns how many landed in fresh cells."""
        return sum(1 for p in points if self.insert(p))

    def contains(self, p: Point) -> bool:
        """True iff ``p``'s raster cell is occupied."""
        if not self._bounds.contains_point(p):
            return False
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[node.rect.quadrant_index(p)]
        return node is not None and node.point is not None

    def delete(self, p: Point) -> bool:
        """Clear ``p``'s raster cell; prunes emptied paths."""
        if self._root is None or not self._bounds.contains_point(p):
            return False
        path: List[Tuple[_Internal, int]] = []
        node = self._root
        while isinstance(node, _Internal):
            idx = node.rect.quadrant_index(p)
            child = node.children[idx]
            if child is None:
                return False
            path.append((node, idx))
            node = child
        if node.point is None:
            return False
        node.point = None
        self._size -= 1
        # prune the now-empty chain bottom-up
        prune: Optional[_Node] = node
        for parent, idx in reversed(path):
            if isinstance(prune, _Leaf) and prune.point is None:
                parent.children[idx] = None
            elif isinstance(prune, _Internal) and all(
                c is None for c in prune.children
            ):
                parent.children[idx] = None
            else:
                break
            prune = parent
        if isinstance(self._root, _Internal) and all(
            c is None for c in self._root.children
        ):
            self._root = None
        elif isinstance(self._root, _Leaf) and self._root.point is None:
            self._root = None
        return True

    def range_search(self, query: Rect) -> List[Point]:
        """All stored points inside the half-open ``query`` box."""
        out: List[Point] = []
        if self._root is None:
            return out
        stack: List[_Node] = [self._root]
        while stack:
            node = stack.pop()
            if not node.rect.intersects(query):
                continue
            if isinstance(node, _Leaf):
                if node.point is not None and query.contains_point(node.point):
                    out.append(node.point)
            else:
                stack.extend(c for c in node.children if c is not None)
        return out

    def points(self) -> Iterator[Point]:
        """Iterate over all stored points."""
        if self._root is None:
            return
        stack: List[_Node] = [self._root]
        while stack:
            node = stack.pop()
            if isinstance(node, _Leaf):
                if node.point is not None:
                    yield node.point
            else:
                stack.extend(c for c in node.children if c is not None)

    def node_count(self) -> int:
        """Total allocated nodes — MX's storage cost metric."""
        if self._root is None:
            return 0
        count = 0
        stack: List[_Node] = [self._root]
        while stack:
            node = stack.pop()
            count += 1
            if isinstance(node, _Internal):
                stack.extend(c for c in node.children if c is not None)
        return count

    def validate(self) -> None:
        """Invariants: data leaves at exact resolution depth; every
        point inside its cell; no fully-empty internal chains."""
        if self._root is None:
            assert self._size == 0
            return
        total = 0
        stack: List[_Node] = [self._root]
        while stack:
            node = stack.pop()
            if isinstance(node, _Leaf):
                assert node.depth == self._resolution
                if node.point is not None:
                    total += 1
                    assert node.rect.contains_point(node.point)
            else:
                assert node.depth < self._resolution
                present = [c for c in node.children if c is not None]
                assert present, "internal node with no children"
                for i, child in enumerate(node.children):
                    if child is not None:
                        assert child.rect == node.rect.child(i)
                        stack.append(child)
        assert total == self._size
