"""Connected-component labeling on region quadtrees.

Two of the paper's references ([Same84c], [Same85a]) are exactly this
operation — Samet & Tamminen's "efficient image component labeling" —
so the substrate earns its keep: label the black (True) regions of a
:class:`~repro.quadtree.region.RegionQuadtree` under 4-adjacency,
working block-by-block rather than pixel-by-pixel.

Algorithm: collect black leaf blocks, build the edge-adjacency graph
with a boundary-coordinate sweep (same device as PR neighbor finding),
and union-find the components.  Cost is O(blocks log blocks), which on
quadtree-friendly images is far below the pixel count — the point of
the cited papers.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .region import RegionQuadtree

Block = Tuple[int, int, int]  # (x, y, side)


class _UnionFind:
    def __init__(self, n: int):
        self.parent = list(range(n))
        self.rank = [0] * n

    def find(self, i: int) -> int:
        root = i
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[i] != root:  # path compression
            self.parent[i], i = root, self.parent[i]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self.rank[ra] < self.rank[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        if self.rank[ra] == self.rank[rb]:
            self.rank[ra] += 1


def black_blocks(tree: RegionQuadtree) -> List[Block]:
    """The black leaf blocks as ``(x, y, side)`` triples."""
    return [
        (x, y, side)
        for x, y, side, value in tree.blocks()
        if value
    ]


def _adjacent_pairs(blocks: List[Block]) -> List[Tuple[int, int]]:
    """Index pairs of blocks sharing a positive-length edge."""
    pairs: List[Tuple[int, int]] = []
    by_right: Dict[int, List[int]] = {}
    by_top: Dict[int, List[int]] = {}
    for i, (x, y, side) in enumerate(blocks):
        by_right.setdefault(x + side, []).append(i)
        by_top.setdefault(y + side, []).append(i)
    for i, (x, y, side) in enumerate(blocks):
        for j in by_right.get(x, ()):  # blocks ending where i starts
            _, yj, sj = blocks[j]
            if min(y + side, yj + sj) - max(y, yj) > 0:
                pairs.append((i, j))
        for j in by_top.get(y, ()):
            xj, _, sj = blocks[j]
            if min(x + side, xj + sj) - max(x, xj) > 0:
                pairs.append((i, j))
    return pairs


def label_components(tree: RegionQuadtree) -> Dict[Block, int]:
    """Map each black block to a component label (0..k-1).

    Labels are contiguous and assigned in first-touch order over the
    block list, so output is deterministic for a given tree.
    """
    blocks = black_blocks(tree)
    uf = _UnionFind(len(blocks))
    for i, j in _adjacent_pairs(blocks):
        uf.union(i, j)
    labels: Dict[Block, int] = {}
    canonical: Dict[int, int] = {}
    for i, block in enumerate(blocks):
        root = uf.find(i)
        if root not in canonical:
            canonical[root] = len(canonical)
        labels[block] = canonical[root]
    return labels


def component_count(tree: RegionQuadtree) -> int:
    """Number of 4-connected black components."""
    labels = label_components(tree)
    return len(set(labels.values())) if labels else 0


def component_areas(tree: RegionQuadtree) -> List[int]:
    """Pixel area of each component, sorted descending."""
    labels = label_components(tree)
    areas: Dict[int, int] = {}
    for (x, y, side), label in labels.items():
        areas[label] = areas.get(label, 0) + side * side
    return sorted(areas.values(), reverse=True)
