"""The PMR quadtree for line segments (Nelson & Samet 1986).

The paper's companion structure for line data: each segment is stored
in every leaf block it crosses, and a leaf splits **once** (never
recursively) when an insertion pushes its segment count past the
*splitting threshold*.  Because a split is not repeated, a leaf may
temporarily hold more than the threshold; the structure is
probabilistically balanced rather than strictly bounded, which is what
makes its population analysis interesting (see [Nels86b]).

This module provides the structure itself and the census probes used by
the PMR population model in :mod:`repro.core.pmr_model`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Tuple, Union

from ..geometry import Point, Rect, Segment
from .census import OccupancyCensus


class _Leaf:
    __slots__ = ("rect", "depth", "segments")

    def __init__(self, rect: Rect, depth: int):
        self.rect = rect
        self.depth = depth
        self.segments: List[Segment] = []


class _Internal:
    __slots__ = ("rect", "depth", "children")

    def __init__(self, rect: Rect, depth: int, children: List["_Node"]):
        self.rect = rect
        self.depth = depth
        self.children = children


_Node = Union[_Leaf, _Internal]


class PMRQuadtree:
    """PMR quadtree over a half-open planar block.

    Parameters
    ----------
    threshold:
        Splitting threshold: a leaf that exceeds this many segments
        *at insertion time* splits once.
    bounds:
        Root block (default unit square).
    max_depth:
        Optional depth truncation; pinned leaves never split.
    """

    def __init__(
        self,
        threshold: int = 4,
        bounds: Optional[Rect] = None,
        max_depth: Optional[int] = None,
    ):
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if bounds is None:
            bounds = Rect.unit(2)
        if bounds.dim != 2:
            raise ValueError("PMR quadtree is planar; bounds must be 2-d")
        if max_depth is not None and max_depth < 0:
            raise ValueError(f"max_depth must be >= 0, got {max_depth}")
        self._threshold = threshold
        self._bounds = bounds
        self._max_depth = max_depth
        self._root: _Node = _Leaf(bounds, 0)
        self._segments: List[Segment] = []

    @property
    def threshold(self) -> int:
        """The splitting threshold."""
        return self._threshold

    @property
    def bounds(self) -> Rect:
        """The root block."""
        return self._bounds

    def __len__(self) -> int:
        return len(self._segments)

    def __contains__(self, seg: Segment) -> bool:
        return seg in self._segments

    # ------------------------------------------------------------------

    def insert(self, seg: Segment) -> bool:
        """Insert a segment; ``False`` if an equal segment is present.

        The segment must intersect the root block.  It is added to
        every leaf whose block it crosses; each such leaf then splits
        once if it exceeds the threshold (the PMR rule).
        """
        if not seg.intersects_rect(self._bounds):
            raise ValueError(f"{seg!r} outside tree bounds {self._bounds!r}")
        if seg in self._segments:
            return False
        self._segments.append(seg)
        touched = self._insert_into(self._root, seg)
        for leaf in touched:
            if len(leaf.segments) > self._threshold and not self._at_depth_limit(
                leaf
            ):
                self._split_once(leaf)
        return True

    def insert_many(self, segments: Iterable[Segment]) -> int:
        """Insert segments in order; returns how many were new."""
        return sum(1 for s in segments if self.insert(s))

    def delete(self, seg: Segment) -> bool:
        """Remove a segment from every leaf holding it; merge where the
        PMR merge rule allows (a node whose descendants collectively
        hold at most ``threshold`` distinct segments collapses)."""
        if seg not in self._segments:
            return False
        self._segments.remove(seg)
        self._delete_from(self._root, seg)
        self._root = self._merged(self._root)
        return True

    # ------------------------------------------------------------------

    def segments(self) -> List[Segment]:
        """All stored segments, in insertion order."""
        return list(self._segments)

    def stabbing_query(self, p: Point) -> List[Segment]:
        """Segments stored in the leaf block containing ``p``.

        This is the PMR access primitive: candidates for "what passes
        near this point", refined by an exact distance test upstream.
        """
        if not self._bounds.contains_point(p):
            return []
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[node.rect.quadrant_index(p)]
        return list(node.segments)

    def window_query(self, query: Rect) -> List[Segment]:
        """Distinct segments crossing the ``query`` box."""
        seen: List[Segment] = []
        stack: List[_Node] = [self._root]
        while stack:
            node = stack.pop()
            if not node.rect.intersects(query):
                continue
            if isinstance(node, _Leaf):
                for s in node.segments:
                    if s.intersects_rect(query) and s not in seen:
                        seen.append(s)
            else:
                stack.extend(node.children)
        return seen

    def nearest_segment(self, p: Point) -> Optional[Segment]:
        """The stored segment nearest to ``p`` (exhaustive over leaves,
        pruned by block distance)."""
        best: Optional[Segment] = None
        best_d = float("inf")
        stack: List[_Node] = [self._root]
        while stack:
            node = stack.pop()
            if node.rect.distance_to_point(p) >= best_d:
                continue
            if isinstance(node, _Leaf):
                for s in node.segments:
                    d = s.distance_to_point(p)
                    if d < best_d:
                        best, best_d = s, d
            else:
                stack.extend(node.children)
        return best

    # ------------------------------------------------------------------

    def leaves(self) -> Iterator[Tuple[Rect, int, int]]:
        """Yield ``(block, depth, segment-count)`` for every leaf."""
        stack: List[_Node] = [self._root]
        while stack:
            node = stack.pop()
            if isinstance(node, _Leaf):
                yield (node.rect, node.depth, len(node.segments))
            else:
                stack.extend(node.children)

    def leaf_count(self) -> int:
        """Number of leaf blocks."""
        return sum(1 for _ in self.leaves())

    def height(self) -> int:
        """Depth of the deepest leaf."""
        return max(depth for _, depth, _ in self.leaves())

    def occupancy_census(self, cap: Optional[int] = None) -> OccupancyCensus:
        """Census of leaves by segment count.

        PMR leaves are not strictly bounded by the threshold; ``cap``
        sets the top census class (default ``threshold + 4``, ample in
        practice) and higher counts clamp into it.
        """
        if cap is None:
            cap = self._threshold + 4
        occupancies = [min(occ, cap) for _, _, occ in self.leaves()]
        return OccupancyCensus.from_occupancies(occupancies, cap)

    def average_occupancy(self) -> float:
        """Mean segments per leaf."""
        total = 0
        leaves = 0
        for _, _, occ in self.leaves():
            total += occ
            leaves += 1
        return total / leaves

    def validate(self) -> None:
        """Invariants: every leaf's segments cross its block; every
        stored segment appears in every leaf it crosses and nowhere
        else; children tile parents."""
        stack: List[_Node] = [self._root]
        while stack:
            node = stack.pop()
            if isinstance(node, _Leaf):
                for s in node.segments:
                    assert s.crosses_interior(node.rect), (
                        f"{s!r} does not cross its leaf block"
                    )
                for s in self._segments:
                    expected = s.crosses_interior(node.rect)
                    assert (s in node.segments) == expected
            else:
                assert [c.rect for c in node.children] == node.rect.split()
                stack.extend(node.children)

    # ------------------------------------------------------------------

    def _at_depth_limit(self, leaf: _Leaf) -> bool:
        """A leaf pins at the explicit depth limit, or when float
        precision makes its block too thin to quarter."""
        if self._max_depth is not None and leaf.depth >= self._max_depth:
            return True
        return not leaf.rect.is_splittable

    def _insert_into(self, node: _Node, seg: Segment) -> List[_Leaf]:
        """Add ``seg`` to every crossed leaf under ``node``; return them."""
        touched: List[_Leaf] = []
        stack = [node]
        while stack:
            cur = stack.pop()
            if not seg.crosses_interior(cur.rect):
                continue
            if isinstance(cur, _Leaf):
                cur.segments.append(seg)
                touched.append(cur)
            else:
                stack.extend(cur.children)
        return touched

    def _split_once(self, leaf: _Leaf) -> None:
        """The PMR split: one subdivision, segments redistributed to the
        children they cross.  Children are NOT re-split even if over
        threshold — that only happens on a later insertion."""
        children: List[_Node] = []
        for i in range(4):
            child = _Leaf(leaf.rect.child(i), leaf.depth + 1)
            child.segments = [
                s for s in leaf.segments if s.crosses_interior(child.rect)
            ]
            children.append(child)
        self._replace(leaf, _Internal(leaf.rect, leaf.depth, children))

    def _replace(self, old: _Node, new: _Node) -> None:
        if old is self._root:
            self._root = new
            return
        stack: List[_Node] = [self._root]
        while stack:
            node = stack.pop()
            if isinstance(node, _Internal):
                for i, child in enumerate(node.children):
                    if child is old:
                        node.children[i] = new
                        return
                stack.extend(node.children)
        raise AssertionError("node to replace not found")  # pragma: no cover

    def _delete_from(self, node: _Node, seg: Segment) -> None:
        stack = [node]
        while stack:
            cur = stack.pop()
            if isinstance(cur, _Leaf):
                if seg in cur.segments:
                    cur.segments.remove(seg)
            else:
                stack.extend(cur.children)

    def _merged(self, node: _Node) -> _Node:
        """Bottom-up merge pass: collapse internal nodes whose subtree
        holds at most ``threshold`` distinct segments."""
        if isinstance(node, _Leaf):
            return node
        node.children = [self._merged(c) for c in node.children]
        if all(isinstance(c, _Leaf) for c in node.children):
            distinct: List[Segment] = []
            for c in node.children:
                assert isinstance(c, _Leaf)
                for s in c.segments:
                    if s not in distinct:
                        distinct.append(s)
            if len(distinct) <= self._threshold:
                merged = _Leaf(node.rect, node.depth)
                merged.segments = [
                    s for s in distinct if s.crosses_interior(node.rect)
                ]
                return merged
        return node
