"""Quadtree-family hierarchical structures.

- :class:`PRQuadtree` — the generalized PR quadtree the paper analyzes
  (regular decomposition, bucket capacity m, any dimension).
- :class:`PRBintree` — binary-fanout regular decomposition.
- :class:`PointQuadtree` — the classical data-defined point quadtree.
- :class:`PMRQuadtree` — the line-segment structure of the paper's
  companion analysis.
- :class:`OccupancyCensus` / :class:`DepthCensus` /
  :class:`CensusAccumulator` — the measurement layer.
"""

from .bintree import PRBintree
from .bulk import bulk_load, from_dict, to_dict
from .labeling import (
    black_blocks,
    component_areas,
    component_count,
    label_components,
)
from .mx import MXQuadtree
from .neighbors import (
    SIDES,
    all_neighbor_pairs,
    edge_neighbors,
    leaf_adjacency_degree,
)
from .pm1 import PM1Quadtree, PM2Quadtree, PM3Quadtree
from .region import RegionQuadtree
from .census import CensusAccumulator, DepthCensus, OccupancyCensus
from .pmr import PMRQuadtree
from .point_quadtree import PointQuadtree
from .pr import DuplicatePointError, PRQuadtree

__all__ = [
    "CensusAccumulator",
    "DepthCensus",
    "DuplicatePointError",
    "MXQuadtree",
    "OccupancyCensus",
    "PM1Quadtree",
    "PM2Quadtree",
    "PM3Quadtree",
    "PMRQuadtree",
    "PointQuadtree",
    "PRBintree",
    "PRQuadtree",
    "RegionQuadtree",
    "SIDES",
    "all_neighbor_pairs",
    "black_blocks",
    "bulk_load",
    "component_areas",
    "component_count",
    "edge_neighbors",
    "from_dict",
    "label_components",
    "leaf_adjacency_degree",
    "to_dict",
]
