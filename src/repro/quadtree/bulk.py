"""Bulk loading and serialization for PR quadtrees.

Because the PR decomposition is determined entirely by the point set
(not insertion order), a tree can be built top-down in one recursive
partition pass — no per-point root-to-leaf descent, no transient
splits.  ``bulk_load`` produces a tree *identical* to incremental
insertion (a property the tests verify) at a fraction of the cost.

Serialization flattens a tree into JSON-compatible primitives so
indexes can be persisted and shipped; ``from_dict(to_dict(t))`` is an
exact structural round trip.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..geometry import Point, Rect
from .pr import PRQuadtree, _Internal, _Leaf, _Node


def bulk_load(
    points: Iterable[Point],
    capacity: int = 1,
    bounds: Optional[Rect] = None,
    dim: int = 2,
    max_depth: Optional[int] = None,
) -> PRQuadtree:
    """Build a PR quadtree from a point set in one top-down pass.

    Duplicate points are dropped (the PR rule stores distinct points);
    points outside the root block raise ``ValueError``.  The result is
    structurally identical to inserting the points one at a time.
    """
    tree = PRQuadtree(
        capacity=capacity, bounds=bounds, dim=dim, max_depth=max_depth
    )
    distinct: List[Point] = []
    seen = set()
    for p in points:
        if not tree.bounds.contains_point(p):
            raise ValueError(f"{p!r} outside tree bounds {tree.bounds!r}")
        if p not in seen:
            seen.add(p)
            distinct.append(p)
    tree._root = _build_node(
        distinct, tree.bounds, 0, capacity, max_depth
    )
    tree._size = len(distinct)
    return tree


def _build_node(
    points: List[Point],
    rect: Rect,
    depth: int,
    capacity: int,
    max_depth: Optional[int],
) -> _Node:
    # Explicit work stack rather than recursion: near-coincident points
    # (coordinates a few ULPs apart) can force ~1000 splits before
    # ``is_splittable`` pins the block, which overflows the Python call
    # stack but is fine iteratively — matching the incremental path.
    holder: List[Optional[_Node]] = [None]
    stack = [(points, rect, depth, holder, 0)]
    while stack:
        pts, r, d, slot, i = stack.pop()
        pinned = (
            (max_depth is not None and d >= max_depth)
            or not r.is_splittable
        )
        if len(pts) <= capacity or pinned:
            leaf = _Leaf(r, d)
            leaf.points = pts
            slot[i] = leaf
            continue
        buckets: List[List[Point]] = [[] for _ in range(1 << r.dim)]
        for p in pts:
            buckets[r.quadrant_index(p)].append(p)
        children: List[_Node] = [None] * len(buckets)  # type: ignore[list-item]
        slot[i] = _Internal(r, d, children)
        for j, bucket in enumerate(buckets):
            stack.append((bucket, r.child(j), d + 1, children, j))
    return holder[0]


def to_dict(tree: PRQuadtree) -> Dict:
    """Flatten a PR quadtree to JSON-compatible primitives.

    The subdivision structure is implicit in the point set, so only the
    configuration and the points need storing; the node layout is
    rebuilt exactly on load.
    """
    return {
        "format": "repro.pr_quadtree",
        "version": 1,
        "capacity": tree.capacity,
        "max_depth": tree.max_depth,
        "bounds": {
            "lo": list(tree.bounds.lo.coords),
            "hi": list(tree.bounds.hi.coords),
        },
        "points": [list(p.coords) for p in tree.points()],
    }


def from_dict(payload: Dict) -> PRQuadtree:
    """Rebuild a PR quadtree serialized by :func:`to_dict`."""
    if payload.get("format") != "repro.pr_quadtree":
        raise ValueError(f"not a PR quadtree payload: {payload.get('format')!r}")
    if payload.get("version") != 1:
        raise ValueError(f"unsupported version {payload.get('version')!r}")
    bounds = Rect(
        Point(*payload["bounds"]["lo"]), Point(*payload["bounds"]["hi"])
    )
    return bulk_load(
        (Point(*coords) for coords in payload["points"]),
        capacity=payload["capacity"],
        bounds=bounds,
        dim=bounds.dim,
        max_depth=payload["max_depth"],
    )
