"""The buffer pool — bounded page cache with pluggable eviction.

Every page access from the tree goes through :meth:`BufferPool.fetch`,
which returns the page's :class:`~repro.storage.page.SlottedPage` view
**pinned**: the caller must :meth:`unpin` it (marking it dirty if it
wrote) before the frame becomes evictable.  When the pool is full, the
eviction policy picks an unpinned victim; a dirty victim is written
back to the page file first.

Two classic policies ship:

- :class:`LRUPolicy` — strict least-recently-used (an ordered dict);
- :class:`ClockPolicy` — second-chance clock sweep (reference bits),
  the cheaper approximation real buffer managers use.

The pool counts hits, misses, evictions, and write-backs both locally
(:attr:`BufferPool.counters`) and through :mod:`repro.obs`
(``storage.pool.hit`` / ``.miss`` / ``.eviction`` / ``.writeback``),
so a ``--verbose`` run shows the cache behavior next to the page-I/O
spans.
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional

from .. import obs
from .page import SlottedPage
from .pagefile import PageFile, StorageError


class BufferPoolFullError(StorageError):
    """Every frame is pinned; nothing can be evicted."""


class EvictionPolicy:
    """Interface the pool drives; implementations track access order."""

    def note_insert(self, pid: int) -> None:
        raise NotImplementedError

    def note_access(self, pid: int) -> None:
        raise NotImplementedError

    def note_remove(self, pid: int) -> None:
        raise NotImplementedError

    def victim(self, evictable: Callable[[int], bool]) -> Optional[int]:
        """Choose an evictable resident page, or ``None`` if all are
        pinned."""
        raise NotImplementedError


class LRUPolicy(EvictionPolicy):
    """Evict the least recently used unpinned page."""

    def __init__(self) -> None:
        self._order: "OrderedDict[int, None]" = OrderedDict()

    def note_insert(self, pid: int) -> None:
        self._order[pid] = None

    def note_access(self, pid: int) -> None:
        self._order.move_to_end(pid)

    def note_remove(self, pid: int) -> None:
        self._order.pop(pid, None)

    def victim(self, evictable: Callable[[int], bool]) -> Optional[int]:
        for pid in self._order:
            if evictable(pid):
                return pid
        return None


class ClockPolicy(EvictionPolicy):
    """Second-chance clock: a hit sets the reference bit; the sweeping
    hand clears bits until it finds an unreferenced, unpinned frame."""

    def __init__(self) -> None:
        self._ring: List[int] = []
        self._ref: Dict[int, bool] = {}
        self._hand = 0

    def note_insert(self, pid: int) -> None:
        self._ring.insert(self._hand, pid)
        self._hand += 1
        self._ref[pid] = True

    def note_access(self, pid: int) -> None:
        self._ref[pid] = True

    def note_remove(self, pid: int) -> None:
        if pid in self._ref:
            index = self._ring.index(pid)
            del self._ring[index]
            if index < self._hand:
                self._hand -= 1
            del self._ref[pid]

    def victim(self, evictable: Callable[[int], bool]) -> Optional[int]:
        if not self._ring:
            return None
        # two sweeps: the first may only clear reference bits
        for _ in range(2 * len(self._ring)):
            if self._hand >= len(self._ring):
                self._hand = 0
            pid = self._ring[self._hand]
            if not evictable(pid):
                self._hand += 1
            elif self._ref[pid]:
                self._ref[pid] = False
                self._hand += 1
            else:
                return pid
        return None


_POLICIES = {"lru": LRUPolicy, "clock": ClockPolicy}


class _Frame:
    __slots__ = ("page", "pins", "dirty")

    def __init__(self, page: SlottedPage):
        self.page = page
        self.pins = 0
        self.dirty = False


class BufferPool:
    """At most ``capacity`` resident pages over one :class:`PageFile`.

    >>> # pool = BufferPool(pagefile, capacity=64, policy="clock")
    """

    def __init__(
        self,
        pagefile: PageFile,
        capacity: int = 64,
        policy: str = "lru",
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if policy not in _POLICIES:
            raise ValueError(
                f"unknown eviction policy {policy!r} "
                f"(choose from {sorted(_POLICIES)})"
            )
        self._file = pagefile
        self._capacity = capacity
        self._policy_name = policy
        self._policy: EvictionPolicy = _POLICIES[policy]()
        self._frames: Dict[int, _Frame] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0

    @property
    def pagefile(self) -> PageFile:
        """The file this pool fronts."""
        return self._file

    @property
    def capacity(self) -> int:
        """Maximum resident pages."""
        return self._capacity

    @property
    def policy(self) -> str:
        """The eviction policy name (``lru`` or ``clock``)."""
        return self._policy_name

    @property
    def resident(self) -> int:
        """Pages currently cached."""
        return len(self._frames)

    @property
    def pinned(self) -> int:
        """Resident pages with at least one pin."""
        return sum(1 for f in self._frames.values() if f.pins)

    @property
    def counters(self) -> Dict[str, int]:
        """Hit/miss/eviction/write-back counts since construction."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "writebacks": self.writebacks,
        }

    @property
    def hit_rate(self) -> float:
        """Fraction of fetches served from a resident frame (0.0 when
        the pool has served no fetches yet)."""
        total = self.hits + self.misses
        if not total:
            return 0.0
        return self.hits / total

    def observe_gauges(self) -> None:
        """Record pool-health gauges on the ambient tracer.

        Trees call this at checkpoint/close so traced runs see the
        pool's final hit rate and residency as ``storage.pool.*``
        gauges next to the per-fetch counters.  No-op untraced.
        """
        if not obs.enabled():
            return
        if self.hits + self.misses:
            obs.gauge("storage.pool.hit_rate", self.hit_rate)
        obs.gauge("storage.pool.resident", float(self.resident))

    # ------------------------------------------------------------------
    # the fetch/pin protocol
    # ------------------------------------------------------------------

    def fetch(self, pid: int) -> SlottedPage:
        """The page's slotted view, pinned for the caller.

        Every ``fetch`` must be balanced by an :meth:`unpin` (use
        :meth:`pinned_page` to get that for free).
        """
        frame = self._frames.get(pid)
        if frame is not None:
            self.hits += 1
            obs.count("storage.pool.hit")
            self._policy.note_access(pid)
        else:
            self.misses += 1
            obs.count("storage.pool.miss")
            self._ensure_room()
            frame = _Frame(SlottedPage(bytearray(self._file.read_page(pid))))
            self._frames[pid] = frame
            self._policy.note_insert(pid)
        frame.pins += 1
        return frame.page

    def unpin(self, pid: int, dirty: bool = False) -> None:
        """Release one pin; ``dirty=True`` marks the page for
        write-back before its frame can be dropped."""
        frame = self._frames.get(pid)
        if frame is None or frame.pins <= 0:
            raise StorageError(f"page {pid} is not pinned")
        frame.pins -= 1
        if dirty:
            frame.dirty = True

    @contextmanager
    def pinned_page(self, pid: int, dirty: bool = False) -> Iterator[SlottedPage]:
        """``with pool.pinned_page(pid) as page:`` — fetch and balance
        the unpin on exit (marking dirty as requested)."""
        page = self.fetch(pid)
        try:
            yield page
        finally:
            self.unpin(pid, dirty=dirty)

    def allocate(self) -> int:
        """Allocate a fresh page in the file and cache it pinned+dirty;
        returns its pid (fetch already counted: the caller holds a pin
        and must unpin)."""
        pid = self._file.allocate()
        self._ensure_room()
        frame = _Frame(SlottedPage.empty(self._file.payload_size))
        frame.dirty = True
        frame.pins = 1
        self._frames[pid] = frame
        self._policy.note_insert(pid)
        return pid

    def free(self, pid: int) -> None:
        """Drop the frame (no write-back — the page is dying) and
        return the page to the file's free list."""
        frame = self._frames.get(pid)
        if frame is not None:
            if frame.pins:
                raise StorageError(f"cannot free pinned page {pid}")
            del self._frames[pid]
            self._policy.note_remove(pid)
        self._file.free_page(pid)

    # ------------------------------------------------------------------
    # write-back
    # ------------------------------------------------------------------

    def flush(self) -> int:
        """Write every dirty resident page back; returns how many."""
        flushed = 0
        for pid, frame in self._frames.items():
            if frame.dirty:
                self._writeback(pid, frame)
                flushed += 1
        return flushed

    def _writeback(self, pid: int, frame: _Frame) -> None:
        self._file.write_page(pid, frame.page.payload)
        frame.dirty = False
        self.writebacks += 1
        obs.count("storage.pool.writeback")

    def _ensure_room(self) -> None:
        while len(self._frames) >= self._capacity:
            victim = self._policy.victim(
                lambda pid: self._frames[pid].pins == 0
            )
            if victim is None:
                raise BufferPoolFullError(
                    f"all {len(self._frames)} frames pinned; "
                    f"cannot evict (capacity {self._capacity})"
                )
            frame = self._frames[victim]
            if frame.dirty:
                self._writeback(victim, frame)
            del self._frames[victim]
            self._policy.note_remove(victim)
            self.evictions += 1
            obs.count("storage.pool.eviction")
