"""``PagedPRQuadtree`` — the PR quadtree with "node = disk page" literal.

The population model the paper builds exists to predict *disk-page*
occupancy; this adapter makes the correspondence physical.  Every leaf
bucket is one slotted page in a :class:`~repro.storage.pagefile.PageFile`,
reached through a :class:`~repro.storage.pool.BufferPool`; the internal
directory (which the paper's model does not count — it counts buckets)
stays in memory, exactly like a grid file's directory fronting its
bucket pages.

Layout of a leaf page:

- **slot 0** — the bucket's identity: ``(depth, path)`` packed little-
  endian, where ``path`` encodes the quadrant index at each level in
  ``dim`` bits.  The page is therefore self-describing: re-opening a
  file rebuilds the directory by scanning data pages, no separate
  serialization of the tree shape exists to drift out of sync.
- **slots 1..** — one fixed-width record per point (``dim`` doubles).

Doubles round-trip exactly through ``struct``, and the split/merge
rules below mirror :class:`~repro.quadtree.pr.PRQuadtree` decision for
decision, so a paged tree and an in-memory tree fed the same stream
produce **bit-identical occupancy censuses** — the property
``tests/test_storage_validation.py`` pins and the planner's
``validate_against`` relies on.
"""

from __future__ import annotations

import heapq
import struct
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from .. import obs
from ..geometry import Point, Rect
from ..quadtree.census import DepthCensus, OccupancyCensus
from .page import HEADER_SIZE, SLOT_SIZE, SlottedPage
from .pagefile import DEFAULT_PAGE_SIZE, PageFile, StorageError
from .pool import BufferPool

#: Leaf identity record (slot 0): depth (u16), quadrant path (u64).
_LEAF_META = struct.Struct("<HQ")

FORMAT_NAME = "pr-paged-quadtree"
FORMAT_VERSION = 1


class _PLeaf:
    """A leaf stub: geometry in memory, points on its page."""

    __slots__ = ("rect", "depth", "path", "page_id")

    def __init__(self, rect: Rect, depth: int, path: int, page_id: int):
        self.rect = rect
        self.depth = depth
        self.path = path
        self.page_id = page_id


class _PInternal:
    """An internal directory node (never owns a page)."""

    __slots__ = ("rect", "depth", "children")

    def __init__(self, rect: Rect, depth: int, children: List["_PNode"]):
        self.rect = rect
        self.depth = depth
        self.children = children


_PNode = Union[_PLeaf, _PInternal]


def required_page_size(capacity: int, dim: int) -> int:
    """The smallest page size able to hold a bucket of ``capacity``
    points (plus the one-point overflow a split consumes)."""
    from .pagefile import PAGE_OVERHEAD

    point_bytes = 8 * dim
    payload = (
        HEADER_SIZE
        + SLOT_SIZE * (capacity + 2)        # meta slot + capacity+1 points
        + _LEAF_META.size
        + point_bytes * (capacity + 1)
    )
    return payload + PAGE_OVERHEAD


class PagedPRQuadtree:
    """A PR quadtree whose buckets live on disk pages.

    Use :meth:`create` to start a new file or :meth:`open` to load an
    existing one; instances are context managers (closing checkpoints).

    >>> # tree = PagedPRQuadtree.create("points.pf", capacity=4)
    >>> # tree.insert(Point(0.5, 0.5)); tree.checkpoint()
    """

    def __init__(
        self,
        pagefile: PageFile,
        pool: BufferPool,
        capacity: int,
        bounds: Rect,
        max_depth: Optional[int],
        root: _PNode,
        size: int,
    ):
        self._file = pagefile
        self._pool = pool
        self._capacity = capacity
        self._bounds = bounds
        self._max_depth = max_depth
        self._root = root
        self._size = size
        self._point_struct = struct.Struct(f"<{bounds.dim}d")
        self._splits = 0
        self._merges = 0
        self._max_depth_seen = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def create(
        cls,
        path: Union[str, Path],
        capacity: int = 1,
        bounds: Optional[Rect] = None,
        dim: int = 2,
        max_depth: Optional[int] = None,
        page_size: int = DEFAULT_PAGE_SIZE,
        pool_pages: int = 64,
        policy: str = "lru",
    ) -> "PagedPRQuadtree":
        """Create a new page file at ``path`` holding an empty tree."""
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if bounds is None:
            bounds = Rect.unit(dim)
        elif bounds.dim != dim and dim != 2:
            raise ValueError(
                f"bounds dimension {bounds.dim} conflicts with dim={dim}"
            )
        if max_depth is not None and max_depth < 0:
            raise ValueError(f"max_depth must be >= 0, got {max_depth}")
        needed = required_page_size(capacity, bounds.dim)
        if page_size < needed:
            raise ValueError(
                f"page_size {page_size} cannot hold a capacity-{capacity} "
                f"bucket in {bounds.dim}-d; need at least {needed} bytes"
            )
        meta = {
            "format": FORMAT_NAME,
            "version": FORMAT_VERSION,
            "capacity": capacity,
            "dim": bounds.dim,
            "bounds": {"lo": list(bounds.lo), "hi": list(bounds.hi)},
            "max_depth": max_depth,
            "points": 0,
        }
        pagefile = PageFile.create(path, page_size=page_size, meta=meta)
        pool = BufferPool(pagefile, capacity=pool_pages, policy=policy)
        root_pid = pool.allocate()
        tree = cls(
            pagefile, pool, capacity, bounds, max_depth,
            _PLeaf(bounds, 0, 0, root_pid), 0,
        )
        page = tree._pool._frames[root_pid].page  # already pinned by allocate
        page.insert(_LEAF_META.pack(0, 0))
        pool.unpin(root_pid, dirty=True)
        return tree

    @classmethod
    def open(
        cls,
        path: Union[str, Path],
        pool_pages: int = 64,
        policy: str = "lru",
    ) -> "PagedPRQuadtree":
        """Open an existing paged tree, rebuilding the directory from
        the self-describing leaf pages."""
        pagefile = PageFile.open(path)
        try:
            meta = pagefile.meta
            if meta.get("format") != FORMAT_NAME:
                raise StorageError(
                    f"{path} is not a {FORMAT_NAME} file "
                    f"(format {meta.get('format')!r})"
                )
            if meta.get("version") != FORMAT_VERSION:
                raise StorageError(
                    f"unsupported {FORMAT_NAME} version {meta.get('version')!r}"
                )
            capacity = int(meta["capacity"])
            dim = int(meta["dim"])
            bounds = Rect(
                Point(*meta["bounds"]["lo"]), Point(*meta["bounds"]["hi"])
            )
            max_depth = meta.get("max_depth")
            max_depth = None if max_depth is None else int(max_depth)
            pool = BufferPool(pagefile, capacity=pool_pages, policy=policy)
            root, size = cls._rebuild(pagefile, bounds, dim)
        except BaseException:
            pagefile.close(checkpoint=False)
            raise
        return cls(pagefile, pool, capacity, bounds, max_depth, root, size)

    @classmethod
    def _rebuild(
        cls, pagefile: PageFile, bounds: Rect, dim: int
    ) -> Tuple[_PNode, int]:
        entries: List[Tuple[int, int, int, int]] = []
        for pid, payload in pagefile.iter_data_pages():
            page = SlottedPage(bytearray(payload))
            try:
                depth, path = _LEAF_META.unpack(page.get(0))
            except (KeyError, struct.error) as exc:
                raise StorageError(
                    f"page {pid} has no leaf identity record"
                ) from exc
            entries.append((depth, path, pid, page.record_count - 1))
        if not entries:
            raise StorageError("page file holds no leaf pages")
        fanout = 1 << dim
        size = sum(count for _, _, _, count in entries)
        if len(entries) == 1 and entries[0][0] == 0:
            _, _, pid, _ = entries[0]
            return _PLeaf(bounds, 0, 0, pid), size
        root = _PInternal(bounds, 0, [None] * fanout)  # type: ignore[list-item]
        for depth, path, pid, _ in sorted(entries):
            if depth == 0:
                raise StorageError(
                    "depth-0 leaf alongside other leaves: corrupt file"
                )
            node = root
            rect = bounds
            for level in range(depth):
                idx = (path >> (level * dim)) & (fanout - 1)
                rect = rect.child(idx)
                if level == depth - 1:
                    if node.children[idx] is not None:
                        raise StorageError(
                            f"two pages claim the same block at depth {depth}"
                        )
                    node.children[idx] = _PLeaf(rect, depth, path, pid)
                else:
                    child = node.children[idx]
                    if child is None:
                        child = _PInternal(
                            rect, level + 1, [None] * fanout
                        )  # type: ignore[list-item]
                        node.children[idx] = child
                    elif isinstance(child, _PLeaf):
                        raise StorageError(
                            "leaf page shadows a deeper page: corrupt file"
                        )
                    node = child
        cls._check_complete(root)
        return root, size

    @staticmethod
    def _check_complete(root: _PInternal) -> None:
        stack: List[_PNode] = [root]
        while stack:
            node = stack.pop()
            if isinstance(node, _PInternal):
                for child in node.children:
                    if child is None:
                        raise StorageError(
                            f"missing leaf page under block {node.rect!r}"
                        )
                    stack.append(child)

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------

    @property
    def capacity(self) -> int:
        """Node capacity m (points per page bucket)."""
        return self._capacity

    @property
    def bounds(self) -> Rect:
        """The root block."""
        return self._bounds

    @property
    def dim(self) -> int:
        """Dimensionality of the space."""
        return self._bounds.dim

    @property
    def fanout(self) -> int:
        """Children per split: ``2^dim``."""
        return 1 << self._bounds.dim

    @property
    def max_depth(self) -> Optional[int]:
        """Depth truncation limit, or ``None`` if unbounded."""
        return self._max_depth

    @property
    def pagefile(self) -> PageFile:
        """The backing page file."""
        return self._file

    @property
    def pool(self) -> BufferPool:
        """The buffer pool fronting the page file."""
        return self._pool

    @property
    def split_count(self) -> int:
        """Leaf splits performed over this instance's lifetime."""
        return self._splits

    @property
    def merge_count(self) -> int:
        """Collapses performed over this instance's lifetime."""
        return self._merges

    @property
    def max_depth_reached(self) -> int:
        """Deepest level any split has created on this instance."""
        return self._max_depth_seen

    def __len__(self) -> int:
        return self._size

    def __contains__(self, p: Point) -> bool:
        return self.contains(p)

    # ------------------------------------------------------------------
    # page plumbing
    # ------------------------------------------------------------------

    @property
    def _path_depth_limit(self) -> int:
        # the u64 path field stores `dim` bits per level
        return 64 // self._bounds.dim

    def _at_depth_limit(self, leaf: _PLeaf) -> bool:
        """Pin at the explicit limit, at path-encoding exhaustion, or
        when float precision makes the block too thin to halve —
        mirroring ``PRQuadtree._at_depth_limit`` plus the encoding
        bound (a leaf 32+ levels deep in 2-d has a block thinner than
        a double's mantissa anyway)."""
        if self._max_depth is not None and leaf.depth >= self._max_depth:
            return True
        if leaf.depth >= self._path_depth_limit:
            return True
        return not leaf.rect.is_splittable

    def _leaf_points(self, leaf: _PLeaf) -> List[Point]:
        """Decode every point on the leaf's page (unpinned on return)."""
        with self._pool.pinned_page(leaf.page_id) as page:
            return [
                Point(*self._point_struct.unpack(record))
                for slot_id, record in page.records()
                if slot_id != 0
            ]

    def _leaf_slots(self, page: SlottedPage) -> Iterator[Tuple[int, Point]]:
        for slot_id, record in page.records():
            if slot_id != 0:
                yield slot_id, Point(*self._point_struct.unpack(record))

    def _leaf_occupancy(self, leaf: _PLeaf) -> int:
        with self._pool.pinned_page(leaf.page_id) as page:
            return page.record_count - 1

    def _new_leaf(self, rect: Rect, depth: int, path: int) -> _PLeaf:
        pid = self._pool.allocate()
        try:
            page = self._pool._frames[pid].page
            page.insert(_LEAF_META.pack(depth, path))
        finally:
            self._pool.unpin(pid, dirty=True)
        return _PLeaf(rect, depth, path, pid)

    def _write_points(self, leaf: _PLeaf, points: Iterable[Point]) -> None:
        with self._pool.pinned_page(leaf.page_id, dirty=True) as page:
            for p in points:
                page.insert(self._point_struct.pack(*p.coords))

    # ------------------------------------------------------------------
    # dynamic operations
    # ------------------------------------------------------------------

    def insert(self, p: Point) -> bool:
        """Insert a point; ``False`` if already stored (PR trees hold
        distinct points).  Raises ``ValueError`` outside the bounds."""
        if not self._bounds.contains_point(p):
            raise ValueError(f"{p!r} outside tree bounds {self._bounds!r}")
        parent: Optional[_PInternal] = None
        node = self._root
        while isinstance(node, _PInternal):
            parent = node
            node = node.children[node.rect.quadrant_index(p)]
        overflow = False
        with self._pool.pinned_page(node.page_id) as page:
            for _, stored in self._leaf_slots(page):
                if stored == p:
                    return False
            page.insert(self._point_struct.pack(*p.coords))
            self._pool._frames[node.page_id].dirty = True
            overflow = page.record_count - 1 > self._capacity
        self._size += 1
        if overflow and not self._at_depth_limit(node):
            self._split(node, parent)
        return True

    def insert_many(self, points: Iterable[Point]) -> int:
        """Insert points in order; returns how many were new."""
        inserted = 0
        for p in points:
            if self.insert(p):
                inserted += 1
        return inserted

    def contains(self, p: Point) -> bool:
        """Exact-match lookup."""
        if not self._bounds.contains_point(p):
            return False
        node = self._root
        while isinstance(node, _PInternal):
            node = node.children[node.rect.quadrant_index(p)]
        return p in self._leaf_points(node)

    def delete(self, p: Point) -> bool:
        """Remove a point; merges under-full subtrees back into one
        page, exactly like the in-memory tree."""
        if not self._bounds.contains_point(p):
            return False
        path: List[_PInternal] = []
        node = self._root
        while isinstance(node, _PInternal):
            path.append(node)
            node = node.children[node.rect.quadrant_index(p)]
        removed = False
        with self._pool.pinned_page(node.page_id) as page:
            for slot_id, stored in self._leaf_slots(page):
                if stored == p:
                    page.delete(slot_id)
                    self._pool._frames[node.page_id].dirty = True
                    removed = True
                    break
        if not removed:
            return False
        self._size -= 1
        self._merge_path(path)
        return True

    def _split(self, leaf: _PLeaf, parent: Optional[_PInternal]) -> None:
        """Split an over-full bucket page into ``2^dim`` child pages,
        recursing while a child overflows (the paper's ``P_{m+1}``
        recursion).  The parent's page returns to the free list."""
        dim = self._bounds.dim
        pending: List[Tuple[_PLeaf, Optional[_PInternal]]] = [(leaf, parent)]
        while pending:
            cur, cur_parent = pending.pop()
            points = self._leaf_points(cur)
            self._pool.free(cur.page_id)
            buckets: List[List[Point]] = [[] for _ in range(self.fanout)]
            for p in points:
                buckets[cur.rect.quadrant_index(p)].append(p)
            children: List[_PNode] = []
            for i in range(self.fanout):
                child = self._new_leaf(
                    cur.rect.child(i),
                    cur.depth + 1,
                    cur.path | (i << (cur.depth * dim)),
                )
                if buckets[i]:
                    self._write_points(child, buckets[i])
                children.append(child)
            node = _PInternal(cur.rect, cur.depth, children)
            self._replace(cur, node, cur_parent)
            self._splits += 1
            obs.count("storage.tree.split")
            if cur.depth + 1 > self._max_depth_seen:
                self._max_depth_seen = cur.depth + 1
            for i, child in enumerate(children):
                assert isinstance(child, _PLeaf)
                if len(buckets[i]) > self._capacity \
                        and not self._at_depth_limit(child):
                    pending.append((child, node))

    def _merge_path(self, path: List[_PInternal]) -> None:
        """Collapse mergeable ancestors, deepest first (same rule as
        ``PRQuadtree``: a subtree holding <= capacity points becomes
        one leaf — one page)."""
        for i in range(len(path) - 1, -1, -1):
            ancestor = path[i]
            if self._subtree_occupancy(ancestor) > self._capacity:
                break
            points = self._collect_and_free(ancestor)
            merged = self._new_leaf(
                ancestor.rect, ancestor.depth, self._path_of(ancestor, path, i)
            )
            if points:
                self._write_points(merged, points)
            self._replace(ancestor, merged, path[i - 1] if i > 0 else None)
            self._merges += 1
            obs.count("storage.tree.merge")

    def _path_of(
        self, node: _PInternal, chain: List[_PInternal], index: int
    ) -> int:
        """Reconstruct the quadrant path of an internal node from the
        root-to-leaf chain (child index at each ancestor)."""
        dim = self._bounds.dim
        path = 0
        for level in range(index):
            parent = chain[level]
            child = chain[level + 1] if level + 1 <= index - 1 else node
            idx = parent.children.index(child)
            path |= idx << (level * dim)
        return path

    def _collect_and_free(self, node: _PNode) -> List[Point]:
        """Gather every point under ``node`` and free its leaf pages."""
        points: List[Point] = []
        stack: List[_PNode] = [node]
        while stack:
            cur = stack.pop()
            if isinstance(cur, _PLeaf):
                points.extend(self._leaf_points(cur))
                self._pool.free(cur.page_id)
            else:
                stack.extend(cur.children)
        return points

    def _subtree_occupancy(self, node: _PNode) -> int:
        total = 0
        stack: List[_PNode] = [node]
        while stack:
            cur = stack.pop()
            if isinstance(cur, _PLeaf):
                total += self._leaf_occupancy(cur)
            else:
                stack.extend(cur.children)
        return total

    def _replace(
        self, old: _PNode, new: _PNode, parent: Optional[_PInternal]
    ) -> None:
        if parent is None:
            if old is not self._root:  # pragma: no cover - invariant
                raise AssertionError("parentless node is not the root")
            self._root = new
            return
        for i, child in enumerate(parent.children):
            if child is old:
                parent.children[i] = new
                return
        raise AssertionError(
            "parent does not own the node to replace"
        )  # pragma: no cover

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def range_search(self, query: Rect) -> List[Point]:
        """All stored points inside the half-open ``query`` box."""
        if query.dim != self.dim:
            raise ValueError(
                f"query dimension {query.dim} != tree dim {self.dim}"
            )
        out: List[Point] = []
        stack: List[_PNode] = [self._root]
        while stack:
            node = stack.pop()
            if not node.rect.intersects(query):
                continue
            if isinstance(node, _PLeaf):
                out.extend(
                    p for p in self._leaf_points(node)
                    if query.contains_point(p)
                )
            else:
                stack.extend(node.children)
        return out

    def nearest(self, q: Point, k: int = 1) -> List[Point]:
        """The ``k`` nearest stored points — same best-first search and
        deterministic (distance, point-order) tie-break as
        ``PRQuadtree.nearest``."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if q.dim != self.dim:
            raise ValueError(
                f"query dimension {q.dim} != tree dim {self.dim}"
            )
        frontier: List[Tuple[float, int, _PNode]] = []
        tie = 0
        heapq.heappush(frontier, (0.0, tie, self._root))
        best: List[Tuple[float, Tuple[float, ...], Point]] = []
        while frontier:
            block_dist, _, node = heapq.heappop(frontier)
            if len(best) == k and block_dist > -best[0][0]:
                break
            if isinstance(node, _PLeaf):
                for p in self._leaf_points(node):
                    key = (-p.distance_to(q), tuple(-c for c in p.coords))
                    if len(best) < k:
                        heapq.heappush(best, key + (p,))
                    elif key > (best[0][0], best[0][1]):
                        heapq.heapreplace(best, key + (p,))
            else:
                for child in node.children:
                    tie += 1
                    heapq.heappush(
                        frontier,
                        (child.rect.distance_to_point(q), tie, child),
                    )
        return [
            p for _, _, p in sorted(best, key=lambda t: (-t[0], t[2].coords))
        ]

    def points(self) -> Iterator[Point]:
        """Iterate over all stored points (block order)."""
        stack: List[_PNode] = [self._root]
        while stack:
            node = stack.pop()
            if isinstance(node, _PLeaf):
                yield from self._leaf_points(node)
            else:
                stack.extend(node.children)

    # ------------------------------------------------------------------
    # measurement
    # ------------------------------------------------------------------

    def leaves(self) -> Iterator[Tuple[Rect, int, int]]:
        """Yield ``(block, depth, occupancy)`` for every leaf page."""
        stack: List[_PNode] = [self._root]
        while stack:
            node = stack.pop()
            if isinstance(node, _PLeaf):
                yield (node.rect, node.depth, self._leaf_occupancy(node))
            else:
                stack.extend(node.children)

    def leaf_count(self) -> int:
        """Number of leaf pages (= bucket pages in the file)."""
        count = 0
        stack: List[_PNode] = [self._root]
        while stack:
            node = stack.pop()
            if isinstance(node, _PLeaf):
                count += 1
            else:
                stack.extend(node.children)
        return count

    def node_count(self) -> int:
        """Total directory nodes, internal and leaf."""
        count = 0
        stack: List[_PNode] = [self._root]
        while stack:
            node = stack.pop()
            count += 1
            if isinstance(node, _PInternal):
                stack.extend(node.children)
        return count

    def height(self) -> int:
        """Depth of the deepest leaf."""
        best = 0
        stack: List[_PNode] = [self._root]
        while stack:
            node = stack.pop()
            if isinstance(node, _PLeaf):
                best = max(best, node.depth)
            else:
                stack.extend(node.children)
        return best

    def occupancy_census(self, clamp_overflow: bool = True) -> OccupancyCensus:
        """Census of bucket pages by occupancy — bit-identical to the
        in-memory tree's census on the same insertion stream."""
        occupancies = []
        for _, _, occ in self.leaves():
            if occ > self._capacity:
                if not clamp_overflow:
                    raise ValueError(
                        f"leaf occupancy {occ} exceeds capacity "
                        f"{self._capacity}"
                    )
                occ = self._capacity
            occupancies.append(occ)
        return OccupancyCensus.from_occupancies(occupancies, self._capacity)

    def depth_census(self, clamp_overflow: bool = True) -> DepthCensus:
        """Census of bucket pages by (depth, occupancy)."""
        pairs = []
        for _, depth, occ in self.leaves():
            if occ > self._capacity:
                if not clamp_overflow:
                    raise ValueError(
                        f"leaf occupancy {occ} exceeds capacity "
                        f"{self._capacity}"
                    )
                occ = self._capacity
            pairs.append((depth, occ))
        return DepthCensus.from_leaves(pairs, self._capacity)

    def validate(self) -> None:
        """Structural invariants, including the page-level ones:
        every leaf's stored identity matches its directory position,
        and the file's live page count equals the leaf count."""
        total = 0
        leaves = 0
        stack: List[_PNode] = [self._root]
        while stack:
            node = stack.pop()
            if isinstance(node, _PLeaf):
                leaves += 1
                with self._pool.pinned_page(node.page_id) as page:
                    depth, path = _LEAF_META.unpack(page.get(0))
                    points = [p for _, p in self._leaf_slots(page)]
                assert depth == node.depth, (
                    f"page {node.page_id} stores depth {depth}, "
                    f"directory says {node.depth}"
                )
                assert path == node.path, (
                    f"page {node.page_id} stores path {path:#x}, "
                    f"directory says {node.path:#x}"
                )
                total += len(points)
                for p in points:
                    assert node.rect.contains_point(p), (
                        f"point {p!r} outside its block {node.rect!r}"
                    )
                assert len(set(points)) == len(points), (
                    "duplicate points in a bucket page"
                )
                if len(points) > self._capacity:
                    assert self._at_depth_limit(node), (
                        f"unpinned bucket over capacity: {len(points)}"
                    )
            else:
                assert node.children[0].depth == node.depth + 1
                expected = node.rect.split()
                got = [c.rect for c in node.children]
                assert got == expected, "children do not tile the parent"
                assert self._subtree_occupancy(node) > self._capacity, (
                    "internal node should have merged into one page"
                )
                stack.extend(node.children)
        assert total == self._size, f"size {self._size} != counted {total}"
        assert leaves == self._file.data_page_count, (
            f"{leaves} leaves but {self._file.data_page_count} data pages"
        )

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------

    def checkpoint(self) -> None:
        """Flush dirty pool pages and atomically publish the file."""
        self._file.update_meta({"points": self._size})
        self._pool.flush()
        self._pool.observe_gauges()
        self._file.checkpoint()

    def close(self) -> None:
        """Checkpoint (only if anything changed) and close the file."""
        if self._file._closed:
            return
        self._pool.observe_gauges()
        dirty = bool(self._pool.flush()) or self._file.dirty
        if dirty or self._file.meta.get("points") != self._size:
            self._file.update_meta({"points": self._size})
            self._file.checkpoint()
        self._file.close(checkpoint=False)

    def __enter__(self) -> "PagedPRQuadtree":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self._file.close(checkpoint=False)

    def stats(self) -> Dict[str, Any]:
        """Pool + file counters for reporting."""
        file_stats = self._file.stats()
        return {
            "points": self._size,
            "leaf_pages": file_stats.data_pages,
            "free_pages": file_stats.free_pages,
            "page_size": file_stats.page_size,
            "file_bytes": file_stats.file_bytes,
            "splits": self._splits,
            "merges": self._merges,
            "pool": dict(self._pool.counters),
            "pool_policy": self._pool.policy,
            "pool_capacity": self._pool.capacity,
        }
