"""Paged storage engine — the paper's "node = disk page" made literal.

Layers, bottom up:

- :mod:`~repro.storage.page` — the slotted page (records behind stable
  slot ids on one fixed-size payload);
- :mod:`~repro.storage.pagefile` — checksummed pages in one binary
  file with a free list and atomic write-temp-then-rename checkpoints;
- :mod:`~repro.storage.pool` — the buffer pool (pin/unpin, dirty
  write-back, LRU or clock eviction);
- :mod:`~repro.storage.paged_tree` — :class:`PagedPRQuadtree`, a PR
  quadtree storing one bucket per page, census-identical to the
  in-memory tree;
- :mod:`~repro.storage.bulkload` — :func:`bulk_load_paged`, the
  sorted bulk-load fast path (Morton partition, one sequential page
  pass, no buffer-pool churn) for fast cold starts;
- :mod:`~repro.storage.cli` — ``repro storage build|stat|validate``.
"""

from .bulkload import bulk_load_paged
from .page import PageFullError, SlottedPage
from .pagefile import (
    DEFAULT_PAGE_SIZE,
    PageCorruptionError,
    PageFile,
    PageFileStats,
    StorageError,
)
from .paged_tree import PagedPRQuadtree, required_page_size
from .pool import (
    BufferPool,
    BufferPoolFullError,
    ClockPolicy,
    EvictionPolicy,
    LRUPolicy,
)

__all__ = [
    "BufferPool",
    "BufferPoolFullError",
    "ClockPolicy",
    "DEFAULT_PAGE_SIZE",
    "EvictionPolicy",
    "LRUPolicy",
    "PageCorruptionError",
    "PageFile",
    "PageFileStats",
    "PageFullError",
    "PagedPRQuadtree",
    "SlottedPage",
    "StorageError",
    "bulk_load_paged",
    "required_page_size",
]
