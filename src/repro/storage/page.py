"""The slotted page — the unit of storage, laid out the way a disk
page actually is.

A page's payload is a fixed-size byte region split three ways:

- a 4-byte **header**: the slot count and the heap boundary;
- a **slot directory** growing upward from the header, one 4-byte
  ``(offset, length)`` entry per record;
- a **record heap** growing downward from the end of the payload.

The two regions grow toward each other; the gap between them is the
page's free space.  Deleting a record leaves a *tombstone* in the
directory (so surviving slot ids stay stable — the tree's metadata
record keeps slot 0 forever) and dead bytes in the heap, which a
compaction sweep reclaims the next time an insert would not otherwise
fit.

The layer below (:mod:`repro.storage.pagefile`) owns checksums and
page-type bytes; this class sees only the payload.
"""

from __future__ import annotations

import struct
from typing import Iterator, List, Optional, Tuple

#: Page header: slot_count (u16), heap_start (u16).
_HEADER = struct.Struct("<HH")
#: One slot directory entry: record offset (u16), record length (u16).
_SLOT = struct.Struct("<HH")
#: Directory offset marking a deleted slot.
_TOMBSTONE = 0xFFFF

HEADER_SIZE = _HEADER.size
SLOT_SIZE = _SLOT.size


class PageFullError(RuntimeError):
    """Raised when a record cannot fit even after compaction."""


class SlottedPage:
    """Variable-length records behind stable slot ids on one page.

    >>> page = SlottedPage.empty(64)
    >>> page.insert(b"hello")
    0
    >>> page.get(0)
    b'hello'
    """

    __slots__ = ("_buf",)

    def __init__(self, payload: bytearray):
        if len(payload) < HEADER_SIZE + SLOT_SIZE:
            raise ValueError(f"payload too small: {len(payload)} bytes")
        self._buf = payload

    @classmethod
    def empty(cls, size: int) -> "SlottedPage":
        """A fresh page of ``size`` payload bytes with no records."""
        buf = bytearray(size)
        _HEADER.pack_into(buf, 0, 0, size)
        return cls(buf)

    # ------------------------------------------------------------------
    # layout accessors
    # ------------------------------------------------------------------

    @property
    def payload(self) -> bytes:
        """The page's raw bytes (what the page file persists)."""
        return bytes(self._buf)

    @property
    def size(self) -> int:
        """Total payload bytes."""
        return len(self._buf)

    @property
    def slot_count(self) -> int:
        """Directory entries, live and tombstoned."""
        return _HEADER.unpack_from(self._buf, 0)[0]

    @property
    def record_count(self) -> int:
        """Live records on the page."""
        return sum(1 for _ in self.records())

    @property
    def free_space(self) -> int:
        """Bytes available to a new record *without* compaction
        (the gap between the directory and the heap)."""
        slots, heap_start = _HEADER.unpack_from(self._buf, 0)
        return heap_start - (HEADER_SIZE + slots * SLOT_SIZE)

    def _slot(self, slot_id: int) -> Tuple[int, int]:
        if not 0 <= slot_id < self.slot_count:
            raise IndexError(f"slot {slot_id} out of range")
        return _SLOT.unpack_from(self._buf, HEADER_SIZE + slot_id * SLOT_SIZE)

    def _set_slot(self, slot_id: int, offset: int, length: int) -> None:
        _SLOT.pack_into(
            self._buf, HEADER_SIZE + slot_id * SLOT_SIZE, offset, length
        )

    def _set_header(self, slots: int, heap_start: int) -> None:
        _HEADER.pack_into(self._buf, 0, slots, heap_start)

    # ------------------------------------------------------------------
    # record operations
    # ------------------------------------------------------------------

    def get(self, slot_id: int) -> bytes:
        """The record in ``slot_id``; raises ``KeyError`` on a tombstone."""
        offset, length = self._slot(slot_id)
        if offset == _TOMBSTONE:
            raise KeyError(f"slot {slot_id} is deleted")
        return bytes(self._buf[offset:offset + length])

    def records(self) -> Iterator[Tuple[int, bytes]]:
        """Yield ``(slot_id, record)`` for every live record, slot order."""
        for slot_id in range(self.slot_count):
            offset, length = self._slot(slot_id)
            if offset != _TOMBSTONE:
                yield slot_id, bytes(self._buf[offset:offset + length])

    def insert(self, record: bytes) -> int:
        """Store ``record``; returns its slot id (tombstones are reused).

        Raises :class:`PageFullError` when the record cannot fit even
        after compacting dead heap space.
        """
        reuse = self._free_slot()
        need = len(record) + (0 if reuse is not None else SLOT_SIZE)
        if self.free_space < need:
            self._compact()
            if self.free_space < need:
                raise PageFullError(
                    f"record of {len(record)} bytes does not fit "
                    f"({self.free_space} free of {self.size})"
                )
        slots, heap_start = _HEADER.unpack_from(self._buf, 0)
        offset = heap_start - len(record)
        self._buf[offset:heap_start] = record
        if reuse is None:
            slot_id = slots
            slots += 1
        else:
            slot_id = reuse
        self._set_header(slots, offset)
        self._set_slot(slot_id, offset, len(record))
        return slot_id

    def delete(self, slot_id: int) -> None:
        """Tombstone ``slot_id``; its heap bytes die until compaction."""
        offset, _ = self._slot(slot_id)
        if offset == _TOMBSTONE:
            raise KeyError(f"slot {slot_id} already deleted")
        self._set_slot(slot_id, _TOMBSTONE, 0)

    def replace(self, slot_id: int, record: bytes) -> None:
        """Overwrite the record in ``slot_id`` (slot id is preserved)."""
        offset, length = self._slot(slot_id)
        if offset == _TOMBSTONE:
            raise KeyError(f"slot {slot_id} is deleted")
        if len(record) == length:
            self._buf[offset:offset + length] = record
            return
        # a failing insert may still have compacted the heap, so restore
        # the whole payload to leave the page bit-for-bit unchanged
        snapshot = bytes(self._buf)
        self._set_slot(slot_id, _TOMBSTONE, 0)
        try:
            self._insert_at(slot_id, record)
        except PageFullError:
            self._buf[:] = snapshot
            raise

    def _insert_at(self, slot_id: int, record: bytes) -> None:
        if self.free_space < len(record):
            self._compact()
            if self.free_space < len(record):
                raise PageFullError(
                    f"record of {len(record)} bytes does not fit"
                )
        slots, heap_start = _HEADER.unpack_from(self._buf, 0)
        offset = heap_start - len(record)
        self._buf[offset:heap_start] = record
        self._set_header(slots, offset)
        self._set_slot(slot_id, offset, len(record))

    def _free_slot(self) -> Optional[int]:
        for slot_id in range(self.slot_count):
            if self._slot(slot_id)[0] == _TOMBSTONE:
                return slot_id
        return None

    def _compact(self) -> None:
        """Repack live records against the end of the page, reclaiming
        every dead byte.  Slot ids are preserved."""
        live: List[Tuple[int, bytes]] = list(self.records())
        slots = self.slot_count
        heap_start = self.size
        for slot_id, record in live:
            heap_start -= len(record)
            self._buf[heap_start:heap_start + len(record)] = record
            self._set_slot(slot_id, heap_start, len(record))
        self._set_header(slots, heap_start)
