"""The page file — fixed-size checksummed pages behind one binary file.

On disk the file is a header block followed by ``page_count`` slots of
exactly ``page_size`` bytes.  Every page slot carries its own CRC-32
and a type tag, so a torn or bit-rotted page is detected on read
(:class:`PageCorruptionError`) instead of silently decoded.  Freed
pages form a linked **free list** threaded through their payloads and
are reused by :meth:`PageFile.allocate` before the file grows.

Durability is **checkpoint-shaped**: reads come from the last
checkpointed image; writes accumulate in a pending overlay (the buffer
pool above writes back evicted dirty pages into it) and become durable
only when :meth:`checkpoint` publishes a complete new image via
write-temp-then-``os.replace``.  The on-disk file is therefore always
a *consistent* snapshot — a crash at any instant leaves either the old
checkpoint or the new one, never a half-written hybrid.

The header carries a small JSON metadata blob for the layer above
(:class:`~repro.storage.paged_tree.PagedPRQuadtree` records its
capacity, dimension, bounds, and point count there).
"""

from __future__ import annotations

import json
import os
import struct
import tempfile
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, Mapping, Optional, Tuple, Union

from .. import obs

MAGIC = b"RPROPG01"
#: Header: magic, page_size, page_count, free_head, free_count,
#: meta_len, then crc32 over all of the above plus the meta bytes.
_HEADER = struct.Struct("<8sIIIII")
_CRC = struct.Struct("<I")
#: Per-page prefix: crc32 of (type, reserved, payload), type, reserved.
_PAGE_HEADER = struct.Struct("<IHH")
PAGE_OVERHEAD = _PAGE_HEADER.size

PAGE_FREE = 0
PAGE_DATA = 1

#: Free-list terminator.
NIL = 0xFFFFFFFF

MIN_PAGE_SIZE = 128
DEFAULT_PAGE_SIZE = 4096


class StorageError(RuntimeError):
    """Base class for storage-engine failures."""


class PageCorruptionError(StorageError):
    """A page or header failed its checksum or structural checks."""


@dataclass(frozen=True)
class PageFileStats:
    """A point-in-time summary of one page file."""

    path: str
    page_size: int
    page_count: int
    free_pages: int
    data_pages: int
    file_bytes: int
    meta: Dict[str, Any]


class PageFile:
    """A file of fixed-size checksummed pages with a free list.

    Use :meth:`create` / :meth:`open` rather than the constructor.
    Instances are context managers; leaving the ``with`` block
    checkpoints and closes.
    """

    def __init__(
        self,
        path: Path,
        handle,
        page_size: int,
        page_count: int,
        free_head: int,
        free_count: int,
        meta: Dict[str, Any],
    ):
        self._path = path
        self._file = handle
        self._page_size = page_size
        self._page_count = page_count
        self._free_head = free_head
        self._free_count = free_count
        self._meta = meta
        #: pages written since the last checkpoint: pid -> (type, payload)
        self._pending: Dict[int, Tuple[int, bytes]] = {}
        #: pages present in the on-disk image
        self._base_count = page_count
        self._closed = False

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def create(
        cls,
        path: Union[str, Path],
        page_size: int = DEFAULT_PAGE_SIZE,
        meta: Optional[Mapping[str, Any]] = None,
    ) -> "PageFile":
        """Create a new empty page file at ``path`` (atomically) and
        open it.  Fails if ``path`` already exists."""
        path = Path(path)
        if path.exists():
            raise FileExistsError(f"page file already exists: {path}")
        if page_size < MIN_PAGE_SIZE:
            raise ValueError(
                f"page_size must be >= {MIN_PAGE_SIZE}, got {page_size}"
            )
        meta_dict = dict(meta or {})
        header = cls._encode_header(page_size, 0, NIL, 0, meta_dict)
        if len(header) > page_size:
            raise ValueError(
                f"metadata ({len(header)} bytes with header) does not fit "
                f"in one {page_size}-byte page"
            )
        _atomic_write(path, header.ljust(page_size, b"\0"))
        return cls.open(path)

    @classmethod
    def open(cls, path: Union[str, Path]) -> "PageFile":
        """Open an existing page file, validating its header."""
        path = Path(path)
        handle = open(path, "rb")
        try:
            fixed = handle.read(_HEADER.size)
            if len(fixed) < _HEADER.size:
                raise PageCorruptionError(f"truncated header in {path}")
            magic, page_size, page_count, free_head, free_count, meta_len = \
                _HEADER.unpack(fixed)
            if magic != MAGIC:
                raise PageCorruptionError(
                    f"{path} is not a repro page file (bad magic)"
                )
            rest = handle.read(_CRC.size + meta_len)
            if len(rest) < _CRC.size + meta_len:
                raise PageCorruptionError(f"truncated header in {path}")
            (stored_crc,) = _CRC.unpack_from(rest, 0)
            meta_bytes = rest[_CRC.size:]
            if zlib.crc32(fixed + meta_bytes) != stored_crc:
                raise PageCorruptionError(f"header checksum mismatch in {path}")
            try:
                meta = json.loads(meta_bytes.decode("utf-8")) if meta_len \
                    else {}
            except ValueError as exc:
                raise PageCorruptionError(
                    f"unreadable metadata in {path}"
                ) from exc
            expected = page_size * (1 + page_count)
            if path.stat().st_size < expected:
                raise PageCorruptionError(
                    f"{path} shorter than its header claims "
                    f"({path.stat().st_size} < {expected} bytes)"
                )
        except BaseException:
            handle.close()
            raise
        return cls(
            path, handle, page_size, page_count, free_head, free_count, meta
        )

    @staticmethod
    def _encode_header(
        page_size: int,
        page_count: int,
        free_head: int,
        free_count: int,
        meta: Dict[str, Any],
    ) -> bytes:
        meta_bytes = json.dumps(meta, sort_keys=True).encode("utf-8")
        fixed = _HEADER.pack(
            MAGIC, page_size, page_count, free_head, free_count,
            len(meta_bytes),
        )
        return fixed + _CRC.pack(zlib.crc32(fixed + meta_bytes)) + meta_bytes

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------

    @property
    def path(self) -> Path:
        """Where the file lives."""
        return self._path

    @property
    def page_size(self) -> int:
        """Bytes per on-disk page slot (payload + checksum overhead)."""
        return self._page_size

    @property
    def payload_size(self) -> int:
        """Usable bytes per page (what the slotted layer sees)."""
        return self._page_size - PAGE_OVERHEAD

    @property
    def page_count(self) -> int:
        """Pages ever allocated (free or data)."""
        return self._page_count

    @property
    def free_page_count(self) -> int:
        """Pages on the free list."""
        return self._free_count

    @property
    def data_page_count(self) -> int:
        """Live data pages."""
        return self._page_count - self._free_count

    @property
    def meta(self) -> Dict[str, Any]:
        """The header's JSON metadata blob (a copy)."""
        return dict(self._meta)

    @property
    def dirty(self) -> bool:
        """Whether un-checkpointed writes are pending."""
        return bool(self._pending)

    def update_meta(self, updates: Mapping[str, Any]) -> None:
        """Merge ``updates`` into the metadata (persisted at the next
        checkpoint)."""
        self._meta.update(updates)

    # ------------------------------------------------------------------
    # page I/O
    # ------------------------------------------------------------------

    def read_page(self, pid: int) -> bytes:
        """The payload of data page ``pid`` (checksum-verified)."""
        with obs.span("storage.page_read"):
            page_type, payload = self._read_raw(pid)
        obs.count("storage.page_reads")
        if page_type != PAGE_DATA:
            raise StorageError(f"page {pid} is on the free list, not data")
        return payload

    def _read_raw(self, pid: int) -> Tuple[int, bytes]:
        self._check_pid(pid)
        pending = self._pending.get(pid)
        if pending is not None:
            return pending
        self._file.seek(self._page_size * (1 + pid))
        raw = self._file.read(self._page_size)
        if len(raw) < self._page_size:
            raise PageCorruptionError(f"page {pid} truncated in {self._path}")
        stored_crc, page_type, reserved = _PAGE_HEADER.unpack_from(raw, 0)
        payload = raw[PAGE_OVERHEAD:]
        computed = zlib.crc32(raw[_CRC.size:PAGE_OVERHEAD])
        computed = zlib.crc32(payload, computed)
        if computed != stored_crc:
            raise PageCorruptionError(
                f"checksum mismatch on page {pid} of {self._path}"
            )
        return page_type, payload

    def write_page(self, pid: int, payload: bytes) -> None:
        """Stage ``payload`` as the new content of data page ``pid``
        (durable at the next checkpoint)."""
        self._check_pid(pid)
        if len(payload) > self.payload_size:
            raise ValueError(
                f"payload of {len(payload)} bytes exceeds page payload "
                f"size {self.payload_size}"
            )
        with obs.span("storage.page_write"):
            padded = bytes(payload).ljust(self.payload_size, b"\0")
            self._pending[pid] = (PAGE_DATA, padded)
        obs.count("storage.page_writes")

    def allocate(self) -> int:
        """A fresh data page id — recycled from the free list when
        possible, otherwise extending the file."""
        if self._closed:
            raise StorageError("page file is closed")
        if self._free_head != NIL:
            pid = self._free_head
            page_type, payload = self._read_raw(pid)
            if page_type != PAGE_FREE:
                raise PageCorruptionError(
                    f"free-list head {pid} is not marked free"
                )
            (self._free_head,) = _CRC.unpack_from(payload, 0)
            self._free_count -= 1
        else:
            pid = self._page_count
            self._page_count += 1
        self._pending[pid] = (PAGE_DATA, bytes(self.payload_size))
        obs.count("storage.page_allocs")
        return pid

    def free_page(self, pid: int) -> None:
        """Return ``pid`` to the free list for reuse."""
        self._check_pid(pid)
        payload = _CRC.pack(self._free_head).ljust(self.payload_size, b"\0")
        self._pending[pid] = (PAGE_FREE, payload)
        self._free_head = pid
        self._free_count += 1
        obs.count("storage.page_frees")

    def iter_data_pages(self) -> Iterator[Tuple[int, bytes]]:
        """Yield ``(pid, payload)`` for every live data page."""
        for pid in range(self._page_count):
            page_type, payload = self._read_raw(pid)
            if page_type == PAGE_DATA:
                yield pid, payload

    def _check_pid(self, pid: int) -> None:
        if self._closed:
            raise StorageError("page file is closed")
        if not 0 <= pid < max(self._page_count, self._base_count):
            raise ValueError(
                f"page id {pid} out of range 0..{self._page_count - 1}"
            )

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------

    def checkpoint(self) -> None:
        """Publish all pending writes as a new on-disk image.

        The image is written to a temp file in the same directory,
        fsynced, then renamed over the old file — the classic atomic
        write, so readers (and crashes) only ever see complete
        checkpoints.
        """
        if self._closed:
            raise StorageError("page file is closed")
        with obs.span("storage.checkpoint"):
            header = self._encode_header(
                self._page_size, self._page_count, self._free_head,
                self._free_count, self._meta,
            )
            if len(header) > self._page_size:
                raise ValueError("metadata grew past one page")
            chunks = [header.ljust(self._page_size, b"\0")]
            for pid in range(self._page_count):
                pending = self._pending.get(pid)
                if pending is not None:
                    page_type, payload = pending
                    prefix = _PAGE_HEADER.pack(0, page_type, 0)
                    crc = zlib.crc32(prefix[_CRC.size:])
                    crc = zlib.crc32(payload, crc)
                    chunks.append(
                        _PAGE_HEADER.pack(crc, page_type, 0) + payload
                    )
                else:
                    self._file.seek(self._page_size * (1 + pid))
                    chunks.append(self._file.read(self._page_size))
            _atomic_write(self._path, b"".join(chunks))
            self._file.close()
            self._file = open(self._path, "rb")
            self._base_count = self._page_count
            self._pending.clear()
        obs.count("storage.checkpoints")

    def close(self, checkpoint: bool = True) -> None:
        """Checkpoint (unless told not to) and release the handle."""
        if self._closed:
            return
        if checkpoint and self._pending:
            self.checkpoint()
        self._file.close()
        self._closed = True

    def __enter__(self) -> "PageFile":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # keep a consistent file even on error: the last checkpoint
        self.close(checkpoint=exc_type is None)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def stats(self) -> PageFileStats:
        """A snapshot of the file's shape and occupancy."""
        return PageFileStats(
            path=str(self._path),
            page_size=self._page_size,
            page_count=self._page_count,
            free_pages=self._free_count,
            data_pages=self.data_page_count,
            file_bytes=self._page_size * (1 + self._page_count),
            meta=self.meta,
        )


def _atomic_write(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` via temp file + fsync + rename."""
    fd, tmp_name = tempfile.mkstemp(
        prefix=path.name, suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
