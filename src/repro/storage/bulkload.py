"""Sorted bulk-load: write a paged PR quadtree in one sequential pass.

``PagedPRQuadtree.create`` + ``insert_many`` builds a file the honest
way — every insert descends the directory, pins a page, and every
split reads a bucket back just to deal it onto ``2^dim`` fresh pages.
That is the right *dynamic* path, but a terrible *cold-start* path:
loading n points costs O(n) pool round-trips and rewrites each page
many times as its region keeps splitting.

This module reuses the query kernel's Morton partition instead.  One
descent encodes every point (the census engine's exact float
arithmetic), one argsort puts them in z-order, and one level-by-level
refinement over the sorted code array yields exactly the leaf set the
incremental build would reach — the PR tree's shape is a function of
the point *set*, never of insertion order.  Each leaf run is then
packed straight into a slotted page and staged into the page file
**once**, in file order, with no buffer pool involved; a final atomic
checkpoint publishes the image.  The result re-opens through the
ordinary ``PagedPRQuadtree.open`` (which re-derives the directory from
the self-describing pages), so bulk-loaded and incrementally-built
files are interchangeable — ``tests/test_bulkload.py`` pins census,
query, and ``validate()`` parity.

Near-coincident clusters that outrun the 62-bit Morton budget (the
code cannot discriminate points the tree would still split apart)
fall back to the incremental path wholesale — correctness first, the
fast path covers every sane workload.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

import numpy as np

from .. import obs
from ..geometry import Point, Rect, interleave_many
from ..kernels.census import _CODE_BITS, _as_coord_array
from ..kernels.queries import PointInput, _descend_cells
from .page import SlottedPage
from .pagefile import DEFAULT_PAGE_SIZE, PageFile
from .paged_tree import (
    _LEAF_META,
    FORMAT_NAME,
    FORMAT_VERSION,
    PagedPRQuadtree,
    required_page_size,
)


class _NeedsIncremental(Exception):
    """Raised when the Morton partition cannot resolve the leaf set
    (points deeper than the code budget): take the slow path."""


def bulk_load_paged(
    path: Union[str, Path],
    points: PointInput,
    capacity: int = 1,
    bounds: Optional[Rect] = None,
    dim: int = 2,
    max_depth: Optional[int] = None,
    page_size: int = DEFAULT_PAGE_SIZE,
    pool_pages: int = 64,
    policy: str = "lru",
) -> PagedPRQuadtree:
    """Create the page file at ``path`` holding ``points`` in one
    sequential pass and open it.

    Parameters mirror :meth:`PagedPRQuadtree.create`; the resulting
    file is indistinguishable from an incremental build of the same
    point set (identical leaf pages, identical censuses).  Duplicate
    points are dropped, as the tree's insert rejects them.
    """
    if capacity < 1:
        raise ValueError(f"capacity must be >= 1, got {capacity}")
    if bounds is None:
        bounds = Rect.unit(dim)
    elif bounds.dim != dim and dim != 2:
        raise ValueError(
            f"bounds dimension {bounds.dim} conflicts with dim={dim}"
        )
    if max_depth is not None and max_depth < 0:
        raise ValueError(f"max_depth must be >= 0, got {max_depth}")
    dim = bounds.dim
    needed = required_page_size(capacity, dim)
    if page_size < needed:
        raise ValueError(
            f"page_size {page_size} cannot hold a capacity-{capacity} "
            f"bucket in {dim}-d; need at least {needed} bytes"
        )
    with obs.span("storage.bulk_load"):
        arr = _as_coord_array(points, dim)
        root_lo = np.asarray(bounds.lo.coords, dtype=np.float64)
        root_hi = np.asarray(bounds.hi.coords, dtype=np.float64)
        if arr.size:
            outside = ~((arr >= root_lo) & (arr < root_hi)).all(axis=1)
            if outside.any():
                p = Point(*arr[outside][0])
                raise ValueError(f"{p!r} outside bounds {bounds!r}")
        arr = np.unique(arr + 0.0, axis=0)
        levels = _CODE_BITS // dim
        cells, pin = _descend_cells(arr, root_lo, root_hi, levels)
        codes = (
            interleave_many(cells, levels)
            if arr.shape[0]
            else np.empty(0, dtype=np.uint64)
        )
        order = np.argsort(codes, kind="stable")
        arr, codes, pin = arr[order], codes[order], pin[order]
        try:
            starts, stops, depths, paths = _leaf_runs(
                codes, pin, capacity, dim, levels, max_depth,
                64 // dim,
            )
        except _NeedsIncremental:
            obs.count("storage.bulk.fallback")
            tree = PagedPRQuadtree.create(
                path, capacity=capacity, bounds=bounds, dim=dim,
                max_depth=max_depth, page_size=page_size,
                pool_pages=pool_pages, policy=policy,
            )
            try:
                tree.insert_many(Point(*row) for row in arr)
                tree.checkpoint()
            except BaseException:
                tree.close()
                raise
            return tree
        _write_leaves(
            path, arr, starts, stops, depths, paths,
            capacity, bounds, max_depth, page_size,
        )
        obs.count("storage.bulk.pages", int(starts.size))
        obs.count("storage.bulk.points", int(arr.shape[0]))
    return PagedPRQuadtree.open(path, pool_pages=pool_pages, policy=policy)


def _leaf_runs(
    codes: np.ndarray,
    pin: np.ndarray,
    capacity: int,
    dim: int,
    levels: int,
    max_depth: Optional[int],
    path_limit: int,
):
    """Partition the sorted code array into the tree's leaf set,
    tracking each leaf's quadrant path.

    Returns ``(starts, stops, depths, paths)`` in Morton order.  The
    split rule is the paged tree's own: split while a block holds more
    than ``capacity`` points, is splittable, and sits above both the
    explicit and the path-encoding depth limits.  Empty sibling blocks
    become (empty) leaf pages, exactly as ``_split`` materializes them.
    """
    n = int(codes.size)
    fanout = 1 << dim
    # Morton digit bit for axis a is (dim-1-a); quadrant-path bit is a
    brev = np.array(
        [
            sum(((d >> (dim - 1 - a)) & 1) << a for a in range(dim))
            for d in range(fanout)
        ],
        dtype=np.uint64,
    )
    depth_cap = path_limit if max_depth is None else min(max_depth, path_limit)

    out_starts = []
    out_stops = []
    out_depths = []
    out_paths = []
    starts = np.zeros(1, dtype=np.int64)
    stops = np.full(1, n, dtype=np.int64)
    prefix = np.zeros(1, dtype=np.uint64)
    paths = np.zeros(1, dtype=np.uint64)
    depth = 0
    while starts.size:
        counts = stops - starts
        is_leaf = counts <= capacity
        if n:
            is_leaf |= pin[np.minimum(starts, n - 1)] <= depth
        if depth >= depth_cap:
            is_leaf[:] = True
        if depth == levels and not is_leaf.all():
            raise _NeedsIncremental
        if is_leaf.any():
            out_starts.append(starts[is_leaf])
            out_stops.append(stops[is_leaf])
            out_depths.append(np.full(int(is_leaf.sum()), depth))
            out_paths.append(paths[is_leaf])
            keep = ~is_leaf
            starts, stops = starts[keep], stops[keep]
            prefix, paths = prefix[keep], paths[keep]
            if not starts.size:
                break
        digits = np.arange(fanout, dtype=np.uint64)
        child_prefix = (prefix[:, None] << np.uint64(dim)) | digits
        step = np.uint64((levels - 1 - depth) * dim)
        child_lo = child_prefix << step
        child_hi = (child_prefix + np.uint64(1)) << step
        c_starts = np.searchsorted(codes, child_lo.ravel(), side="left")
        c_stops = np.searchsorted(codes, child_hi.ravel(), side="left")
        child_paths = (
            paths[:, None] | (brev[digits] << np.uint64(depth * dim))
        )
        starts = c_starts.astype(np.int64)
        stops = c_stops.astype(np.int64)
        prefix = child_prefix.ravel()
        paths = child_paths.ravel()
        depth += 1

    starts = np.concatenate(out_starts)
    stops = np.concatenate(out_stops)
    depths = np.concatenate(out_depths)
    paths = np.concatenate(out_paths)
    order = np.lexsort((depths, starts))
    return starts[order], stops[order], depths[order], paths[order]


def _write_leaves(
    path: Union[str, Path],
    arr: np.ndarray,
    starts: np.ndarray,
    stops: np.ndarray,
    depths: np.ndarray,
    paths: np.ndarray,
    capacity: int,
    bounds: Rect,
    max_depth: Optional[int],
    page_size: int,
) -> None:
    """Pack each leaf run into a slotted page and publish the file in
    one atomic checkpoint — no buffer pool, every page written once."""
    import struct

    dim = bounds.dim
    point_struct = struct.Struct(f"<{dim}d")
    meta = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "capacity": capacity,
        "dim": dim,
        "bounds": {"lo": list(bounds.lo), "hi": list(bounds.hi)},
        "max_depth": max_depth,
        "points": int(arr.shape[0]),
    }
    pagefile = PageFile.create(path, page_size=page_size, meta=meta)
    try:
        payload_size = pagefile.payload_size
        for i in range(int(starts.size)):
            page = SlottedPage.empty(payload_size)
            page.insert(_LEAF_META.pack(int(depths[i]), int(paths[i])))
            for row in arr[starts[i]:stops[i]]:
                page.insert(point_struct.pack(*row))
            pid = pagefile.allocate()
            pagefile.write_page(pid, page.payload)
        pagefile.checkpoint()
    except BaseException:
        pagefile.close(checkpoint=False)
        Path(path).unlink(missing_ok=True)
        raise
    pagefile.close(checkpoint=False)
