"""``python -m repro storage`` — build, inspect, and validate paged trees.

Three subcommands close the loop the paper's model opens:

- ``build``  — generate a seeded workload and build a
  :class:`~repro.storage.paged_tree.PagedPRQuadtree` on disk;
- ``stat``   — print a page file's shape, occupancy census, and pool
  counters;
- ``validate`` — structural invariants plus the planner's
  prediction-vs-reality report
  (:meth:`repro.core.planning.StoragePlanner.validate_against`).

With ``--verbose`` each command installs a tracer and prints the span
tree, so page I/O and buffer-pool behavior are visible next to the
results.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..obs import Tracer, tracing
from .paged_tree import PagedPRQuadtree
from .pagefile import StorageError

_DISTRIBUTIONS = ("uniform", "gaussian")


def _generator(name: str, dim: int, seed: int):
    from ..workloads import GaussianPoints, UniformPoints

    if name == "uniform":
        return UniformPoints(dim=dim, seed=seed)
    if name == "gaussian":
        return GaussianPoints(dim=dim, seed=seed)
    raise ValueError(f"unknown distribution {name!r}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro storage",
        description="Build and validate disk-backed PR quadtrees.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    build = sub.add_parser(
        "build", help="build a paged PR quadtree from a seeded workload"
    )
    build.add_argument("path", help="page file to create")
    build.add_argument("--n", type=int, default=1000,
                       help="points to insert (default: %(default)s)")
    build.add_argument("--capacity", type=int, default=4,
                       help="bucket capacity m (default: %(default)s)")
    build.add_argument("--dim", type=int, default=2,
                       help="space dimension (default: %(default)s)")
    build.add_argument("--seed", type=int, default=1987,
                       help="workload RNG seed (default: %(default)s)")
    build.add_argument("--distribution", choices=_DISTRIBUTIONS,
                       default="uniform",
                       help="point distribution (default: %(default)s)")
    build.add_argument("--page-size", type=int, default=4096,
                       help="bytes per page (default: %(default)s)")
    build.add_argument("--pool-pages", type=int, default=64,
                       help="buffer pool frames (default: %(default)s)")
    build.add_argument("--policy", choices=("lru", "clock"), default="lru",
                       help="pool eviction policy (default: %(default)s)")
    build.add_argument("--bulk", action="store_true",
                       help="sorted bulk-load: write leaves in one "
                            "sequential pass (fast cold start)")
    build.add_argument("--verbose", action="store_true",
                       help="print the instrumentation span tree")

    stat = sub.add_parser("stat", help="print a page file's shape")
    stat.add_argument("path", help="page file to inspect")
    stat.add_argument("--verbose", action="store_true",
                      help="print the instrumentation span tree")

    validate = sub.add_parser(
        "validate",
        help="check invariants and compare against the planner's prediction",
    )
    validate.add_argument("path", help="page file to validate")
    validate.add_argument("--tolerance", type=float, default=0.10,
                          help="allowed relative page-count error "
                               "(default: %(default)s)")
    validate.add_argument("--verbose", action="store_true",
                          help="print the instrumentation span tree")
    return parser


def _cmd_build(args: argparse.Namespace) -> int:
    points = _generator(args.distribution, args.dim, args.seed).generate(
        args.n
    )
    if args.bulk:
        from .bulkload import bulk_load_paged

        tree = bulk_load_paged(
            args.path,
            points,
            capacity=args.capacity,
            dim=args.dim,
            page_size=args.page_size,
            pool_pages=args.pool_pages,
            policy=args.policy,
        )
        try:
            inserted = len(tree)
            stats = tree.stats()
        finally:
            tree.close()
    else:
        tree = PagedPRQuadtree.create(
            args.path,
            capacity=args.capacity,
            dim=args.dim,
            page_size=args.page_size,
            pool_pages=args.pool_pages,
            policy=args.policy,
        )
        try:
            inserted = tree.insert_many(points)
            tree.checkpoint()
            stats = tree.stats()
        finally:
            tree.close()
    how = "bulk-loaded" if args.bulk else "built"
    print(f"{how} {args.path}: {inserted} points in "
          f"{stats['leaf_pages']} pages "
          f"({stats['page_size']}B each, {stats['splits']} splits)")
    pool = stats["pool"]
    print(f"  pool ({stats['pool_policy']}, {stats['pool_capacity']} frames): "
          f"{pool['hits']} hits, {pool['misses']} misses, "
          f"{pool['evictions']} evictions, {pool['writebacks']} writebacks")
    return 0


def _cmd_stat(args: argparse.Namespace) -> int:
    with PagedPRQuadtree.open(args.path) as tree:
        census = tree.occupancy_census()  # walks pages through the pool
        stats = tree.stats()  # after the walk, so pool counters are live
        print(f"{args.path}: {stats['points']} points, "
              f"{stats['leaf_pages']} data pages + "
              f"{stats['free_pages']} free "
              f"({stats['file_bytes']} bytes, "
              f"page size {stats['page_size']})")
        print(f"  capacity m={tree.capacity}, dim={tree.dim}, "
              f"height {tree.height()}")
        print(f"  mean occupancy {census.average_occupancy():.3f} "
              f"({census.average_occupancy() / tree.capacity:.1%} full)")
        print(f"  occupancy census: {list(census.counts)}")
        pool = stats["pool"]
        print(f"  pool ({stats['pool_policy']}, "
              f"{stats['pool_capacity']} frames): "
              f"hit rate {tree.pool.hit_rate:.1%} "
              f"({pool['hits']} hits, {pool['misses']} misses, "
              f"{pool['evictions']} evictions)")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from ..core.planning import StoragePlanner

    with PagedPRQuadtree.open(args.path) as tree:
        tree.validate()
        print(f"{args.path}: structure OK "
              f"({tree.leaf_count()} leaf pages, {len(tree)} points)")
        planner = StoragePlanner(buckets=tree.fanout)
        report = planner.validate_against(tree.pagefile)
    print(report.summary())
    if not report.within(args.tolerance):
        print(f"FAIL: page-count error {report.page_error:+.1%} exceeds "
              f"{args.tolerance:.0%} tolerance")
        return 1
    print(f"OK: prediction within {args.tolerance:.0%} tolerance")
    return 0


_HANDLERS = {
    "build": _cmd_build,
    "stat": _cmd_stat,
    "validate": _cmd_validate,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handler = _HANDLERS[args.command]
    try:
        if args.verbose:
            tracer = Tracer()
            with tracing(tracer):
                status = handler(args)
            print()
            print(tracer.render())
            return status
        return handler(args)
    except (StorageError, FileNotFoundError, FileExistsError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
