"""Experiment harness — the paper's measurement protocol.

Every experiment in the paper follows one recipe: build ``trials``
independent PR quadtrees from fresh random points, census each, and
average.  The harness parameterizes that recipe over node capacity,
sample size, data distribution, and depth truncation, and returns the
accumulated statistics the table builders print.

Seeding: trial ``t`` of an experiment seeded ``s`` uses generator seed
``s + t``, so every table is reproducible bit-for-bit and trials stay
independent.

Execution is delegated to :mod:`repro.runtime`: :func:`run_trials` is a
thin compatibility wrapper that lowers its arguments to an
:class:`~repro.runtime.ExperimentSpec` and calls
:func:`repro.runtime.execute`, which handles the result cache, the
process pool, and run metrics.  Parallel and cached runs are
bit-identical to the historical serial loop.  Custom generator
factories that the spec layer cannot name (arbitrary callables) still
work: they take a legacy in-process path, just without caching or
parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, List, Optional, Sequence, Tuple

from .. import obs
from ..geometry import Rect
from ..quadtree import CensusAccumulator, DepthCensus, PRQuadtree
from ..runtime import (
    ENGINES,
    ExperimentSpec,
    RuntimeConfig,
    TrialResult,
    active_config,
    execute,
    rect_to_tuple,
)
from ..workloads import GaussianPoints, PointGenerator, UniformPoints

GeneratorFactory = Callable[[Optional[int]], PointGenerator]


def uniform_factory(bounds: Optional[Rect] = None) -> GeneratorFactory:
    """Factory of seeded uniform generators over ``bounds``."""
    def factory(seed: Optional[int]) -> PointGenerator:
        return UniformPoints(bounds=bounds, seed=seed)

    factory.spec_generator = "uniform"
    factory.spec_bounds = bounds
    factory.spec_params = ()
    return factory


def gaussian_factory(bounds: Optional[Rect] = None) -> GeneratorFactory:
    """Factory of seeded paper-style Gaussian generators (sigma = side/4)."""
    def factory(seed: Optional[int]) -> PointGenerator:
        return GaussianPoints(bounds=bounds, seed=seed)

    factory.spec_generator = "gaussian"
    factory.spec_bounds = bounds
    factory.spec_params = ()
    return factory


@dataclass
class TrialSet:
    """Everything measured across one experiment's trials."""

    capacity: int
    n_points: int
    accumulator: CensusAccumulator
    depth_censuses: List[DepthCensus] = field(default_factory=list)
    area_occupancy: List[Tuple[float, int]] = field(default_factory=list)

    @property
    def trials(self) -> int:
        """Number of trees built."""
        return self.accumulator.trials

    def merge(self, other: "TrialSet") -> None:
        """Fold another trial set's measurements into this one.

        Partial results from parallel workers combine exactly: count
        sums are integer-valued (exact float addition), and the
        collected census/area lists concatenate in trial order.
        """
        if other.capacity != self.capacity:
            raise ValueError(
                f"capacity mismatch: {other.capacity} vs {self.capacity}"
            )
        if other.n_points != self.n_points:
            raise ValueError(
                f"n_points mismatch: {other.n_points} vs {self.n_points}"
            )
        self.accumulator.merge(other.accumulator)
        self.depth_censuses.extend(other.depth_censuses)
        self.area_occupancy.extend(other.area_occupancy)

    def mean_proportions(self) -> Tuple[float, ...]:
        """Pooled occupancy proportions — experimental Table 1 rows."""
        return self.accumulator.mean_proportions()

    def mean_occupancy(self) -> float:
        """Pooled mean occupancy — experimental Table 2 column."""
        return self.accumulator.mean_occupancy()

    def mean_nodes(self) -> float:
        """Mean leaves per tree — the 'nodes' column of Tables 4/5."""
        return self.accumulator.mean_total_nodes()


def build_tree(
    points: Sequence,
    capacity: int,
    bounds: Optional[Rect] = None,
    max_depth: Optional[int] = None,
) -> PRQuadtree:
    """Build one PR quadtree from a point sequence."""
    tree = PRQuadtree(capacity=capacity, bounds=bounds, max_depth=max_depth)
    tree.insert_many(points)
    return tree


def spec_for(
    capacity: int,
    n_points: int = 1000,
    trials: int = 10,
    seed: int = 0,
    generator_factory: Optional[GeneratorFactory] = None,
    max_depth: Optional[int] = None,
    bounds: Optional[Rect] = None,
    collect_depth: bool = False,
    collect_area: bool = False,
) -> Optional[ExperimentSpec]:
    """Lower harness kwargs to an ExperimentSpec, or ``None`` when the
    generator factory is an arbitrary callable the spec layer cannot
    name (no ``spec_generator`` tag)."""
    if generator_factory is None:
        name, gen_bounds, params = "uniform", bounds, ()
    else:
        name = getattr(generator_factory, "spec_generator", None)
        if name is None:
            return None
        gen_bounds = getattr(generator_factory, "spec_bounds", None)
        params = tuple(getattr(generator_factory, "spec_params", ()))
    return ExperimentSpec(
        capacity=capacity,
        n_points=n_points,
        trials=trials,
        seed=seed,
        generator=name,
        generator_params=params,
        max_depth=max_depth,
        bounds=rect_to_tuple(bounds),
        generator_bounds=rect_to_tuple(gen_bounds),
        collect_depth=collect_depth,
        collect_area=collect_area,
    )


def _trial_set_from_result(
    result: TrialResult, n_points: int
) -> TrialSet:
    return TrialSet(
        capacity=result.capacity,
        n_points=n_points,
        accumulator=result.accumulator,
        depth_censuses=result.depth_censuses,
        area_occupancy=result.area_occupancy,
    )


def run_trials(
    capacity: int,
    n_points: int = 1000,
    trials: int = 10,
    seed: int = 0,
    generator_factory: Optional[GeneratorFactory] = None,
    max_depth: Optional[int] = None,
    bounds: Optional[Rect] = None,
    collect_depth: bool = False,
    collect_area: bool = False,
    workers: Optional[int] = None,
    runtime: Optional[RuntimeConfig] = None,
    engine: Optional[str] = None,
) -> TrialSet:
    """The paper's protocol: ``trials`` trees of ``n_points`` each.

    Set ``collect_depth`` for the aging experiment (per-depth censuses)
    and ``collect_area`` to gather ``(block area, occupancy)`` pairs
    for the area-weighted correction.

    Execution routes through :mod:`repro.runtime`: ``runtime`` pins an
    explicit :class:`RuntimeConfig` (otherwise the ambient
    ``runtime_session`` config, if any, applies); ``workers`` and
    ``engine`` override just that setting.  ``engine="vector"`` runs
    trials through the Morton-code census kernel instead of building
    object trees — bit-identical statistics, much faster at large n
    (``collect_area`` runs always use the object engine, which alone
    has leaf rectangles to measure).  Results are bit-identical across
    serial, parallel, cached, and vector execution.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    spec = spec_for(
        capacity,
        n_points=n_points,
        trials=trials,
        seed=seed,
        generator_factory=generator_factory,
        max_depth=max_depth,
        bounds=bounds,
        collect_depth=collect_depth,
        collect_area=collect_area,
    )
    if spec is None:
        base = runtime if runtime is not None else active_config()
        legacy_engine = engine if engine is not None else (
            base.engine if base is not None else "object"
        )
        return _run_trials_legacy(
            capacity, n_points, trials, seed, generator_factory,
            max_depth, bounds, collect_depth, collect_area, legacy_engine,
        )
    overrides = {}
    if workers is not None:
        overrides["workers"] = workers
    if engine is not None:
        overrides["engine"] = engine
    if overrides:
        base = runtime if runtime is not None else active_config()
        runtime = (
            replace(base, **overrides)
            if base is not None
            else RuntimeConfig(**overrides)
        )
    return _trial_set_from_result(execute(spec, runtime), n_points)


def _run_trials_legacy(
    capacity: int,
    n_points: int,
    trials: int,
    seed: int,
    generator_factory: GeneratorFactory,
    max_depth: Optional[int],
    bounds: Optional[Rect],
    collect_depth: bool,
    collect_area: bool,
    engine: str = "object",
) -> TrialSet:
    """In-process loop for unnameable generator factories (no caching,
    no pool) — behaviorally identical to the pre-runtime harness.
    Honors the engine selector: vector trials call the census kernel
    (unless leaf areas are collected, which needs real blocks)."""
    if engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of {ENGINES}"
        )
    use_vector = engine == "vector" and not collect_area
    result = TrialSet(
        capacity=capacity,
        n_points=n_points,
        accumulator=CensusAccumulator(capacity),
    )
    for trial in range(trials):
        generator = generator_factory(seed + trial)
        if use_vector:
            from ..kernels import vector_census

            tree_bounds = bounds if bounds is not None else Rect.unit(2)
            with obs.span("trial.build"):
                partition = vector_census(
                    generator.generate(n_points),
                    capacity,
                    bounds=tree_bounds,
                    dim=tree_bounds.dim,
                    max_depth=max_depth,
                )
            with obs.span("trial.census"):
                result.accumulator.add(partition.occupancy_census())
                if collect_depth:
                    result.depth_censuses.append(partition.depth_census())
            continue
        with obs.span("trial.build"):
            tree = build_tree(
                generator.generate(n_points), capacity, bounds, max_depth
            )
        with obs.span("trial.census"):
            result.accumulator.add(tree.occupancy_census())
            if collect_depth:
                result.depth_censuses.append(tree.depth_census())
            if collect_area:
                result.area_occupancy.extend(
                    (rect.volume, min(occ, capacity))
                    for rect, _, occ in tree.leaves()
                )
        if obs.enabled():
            obs.count("tree.built")
            obs.count("tree.splits", tree.split_count)
            obs.gauge("tree.max_depth", tree.max_depth_reached)
    return result


@dataclass(frozen=True)
class SizeSweepPoint:
    """One (n, nodes, occupancy) sample of an occupancy-vs-size sweep."""

    n_points: int
    mean_nodes: float
    mean_occupancy: float


def sweep_stride(trials: int) -> int:
    """Seed-block stride between the sizes of a sweep.

    At least ``trials`` so consecutive sizes draw from disjoint seed
    blocks, and at least the historical 1,000 so sweeps at the usual
    trial counts keep their seed streams (and result-cache keys).
    """
    return max(trials, 1_000)


def occupancy_vs_size(
    capacity: int,
    sizes: Sequence[int],
    trials: int = 10,
    seed: int = 0,
    generator_factory: Optional[GeneratorFactory] = None,
    max_depth: Optional[int] = None,
    workers: Optional[int] = None,
    runtime: Optional[RuntimeConfig] = None,
    engine: Optional[str] = None,
) -> List[SizeSweepPoint]:
    """Mean node count and occupancy at each sample size — the phasing
    sweep behind Tables 4/5 and Figures 2/3.

    Different sizes use disjoint seed blocks so the samples are
    independent, as in the paper (fresh trees per size, not grown).
    The stride between blocks is ``max(trials, 1_000)`` — a fixed
    1,000 used to let sweeps with more than 1,000 trials reuse seeds
    across sizes, silently correlating the samples.  (Consequently,
    cache keys for >1,000-trial sweeps differ from pre-fix runs.)
    """
    sweep: List[SizeSweepPoint] = []
    stride = sweep_stride(trials)
    for index, n_points in enumerate(sizes):
        trial_set = run_trials(
            capacity,
            n_points=n_points,
            trials=trials,
            seed=seed + index * stride,
            generator_factory=generator_factory,
            max_depth=max_depth,
            workers=workers,
            runtime=runtime,
            engine=engine,
        )
        sweep.append(
            SizeSweepPoint(
                n_points=n_points,
                mean_nodes=trial_set.mean_nodes(),
                mean_occupancy=trial_set.mean_occupancy(),
            )
        )
    return sweep
