"""Experiment harness — the paper's measurement protocol.

Every experiment in the paper follows one recipe: build ``trials``
independent PR quadtrees from fresh random points, census each, and
average.  The harness parameterizes that recipe over node capacity,
sample size, data distribution, and depth truncation, and returns the
accumulated statistics the table builders print.

Seeding: trial ``t`` of an experiment seeded ``s`` uses generator seed
``s + t``, so every table is reproducible bit-for-bit and trials stay
independent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..geometry import Rect
from ..quadtree import CensusAccumulator, DepthCensus, PRQuadtree
from ..workloads import GaussianPoints, PointGenerator, UniformPoints

GeneratorFactory = Callable[[Optional[int]], PointGenerator]


def uniform_factory(bounds: Optional[Rect] = None) -> GeneratorFactory:
    """Factory of seeded uniform generators over ``bounds``."""
    return lambda seed: UniformPoints(bounds=bounds, seed=seed)


def gaussian_factory(bounds: Optional[Rect] = None) -> GeneratorFactory:
    """Factory of seeded paper-style Gaussian generators (sigma = side/4)."""
    return lambda seed: GaussianPoints(bounds=bounds, seed=seed)


@dataclass
class TrialSet:
    """Everything measured across one experiment's trials."""

    capacity: int
    n_points: int
    accumulator: CensusAccumulator
    depth_censuses: List[DepthCensus] = field(default_factory=list)
    area_occupancy: List[Tuple[float, int]] = field(default_factory=list)

    @property
    def trials(self) -> int:
        """Number of trees built."""
        return self.accumulator.trials

    def mean_proportions(self) -> Tuple[float, ...]:
        """Pooled occupancy proportions — experimental Table 1 rows."""
        return self.accumulator.mean_proportions()

    def mean_occupancy(self) -> float:
        """Pooled mean occupancy — experimental Table 2 column."""
        return self.accumulator.mean_occupancy()

    def mean_nodes(self) -> float:
        """Mean leaves per tree — the 'nodes' column of Tables 4/5."""
        return self.accumulator.mean_total_nodes()


def build_tree(
    points: Sequence,
    capacity: int,
    bounds: Optional[Rect] = None,
    max_depth: Optional[int] = None,
) -> PRQuadtree:
    """Build one PR quadtree from a point sequence."""
    tree = PRQuadtree(capacity=capacity, bounds=bounds, max_depth=max_depth)
    tree.insert_many(points)
    return tree


def run_trials(
    capacity: int,
    n_points: int = 1000,
    trials: int = 10,
    seed: int = 0,
    generator_factory: Optional[GeneratorFactory] = None,
    max_depth: Optional[int] = None,
    bounds: Optional[Rect] = None,
    collect_depth: bool = False,
    collect_area: bool = False,
) -> TrialSet:
    """The paper's protocol: ``trials`` trees of ``n_points`` each.

    Set ``collect_depth`` for the aging experiment (per-depth censuses)
    and ``collect_area`` to gather ``(block area, occupancy)`` pairs
    for the area-weighted correction.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    if generator_factory is None:
        generator_factory = uniform_factory(bounds)
    result = TrialSet(
        capacity=capacity,
        n_points=n_points,
        accumulator=CensusAccumulator(capacity),
    )
    for trial in range(trials):
        generator = generator_factory(seed + trial)
        tree = build_tree(
            generator.generate(n_points), capacity, bounds, max_depth
        )
        result.accumulator.add(tree.occupancy_census())
        if collect_depth:
            result.depth_censuses.append(tree.depth_census())
        if collect_area:
            result.area_occupancy.extend(
                (rect.volume, min(occ, capacity))
                for rect, _, occ in tree.leaves()
            )
    return result


@dataclass(frozen=True)
class SizeSweepPoint:
    """One (n, nodes, occupancy) sample of an occupancy-vs-size sweep."""

    n_points: int
    mean_nodes: float
    mean_occupancy: float


def occupancy_vs_size(
    capacity: int,
    sizes: Sequence[int],
    trials: int = 10,
    seed: int = 0,
    generator_factory: Optional[GeneratorFactory] = None,
    max_depth: Optional[int] = None,
) -> List[SizeSweepPoint]:
    """Mean node count and occupancy at each sample size — the phasing
    sweep behind Tables 4/5 and Figures 2/3.

    Different sizes use disjoint seed blocks so the samples are
    independent, as in the paper (fresh trees per size, not grown).
    """
    sweep: List[SizeSweepPoint] = []
    for index, n_points in enumerate(sizes):
        trial_set = run_trials(
            capacity,
            n_points=n_points,
            trials=trials,
            seed=seed + index * 1_000,
            generator_factory=generator_factory,
            max_depth=max_depth,
        )
        sweep.append(
            SizeSweepPoint(
                n_points=n_points,
                mean_nodes=trial_set.mean_nodes(),
                mean_occupancy=trial_set.mean_occupancy(),
            )
        )
    return sweep
