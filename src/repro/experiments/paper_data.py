"""The paper's published numbers, transcribed for comparison.

Values are exactly as printed in Nelson & Samet (SIGMOD 1987); the
benchmark harness prints measured values next to these and
EXPERIMENTS.md records the deltas.  (Two of Table 2's percent
differences do not recompute from their own row — 7.5 for m=7 and 10.8
for m=8 — we record what is printed.)
"""

from __future__ import annotations

from typing import Dict, List, Tuple

#: Table 1 — expected distribution vectors, theory rows, m = 1..8.
TABLE1_THEORY: Dict[int, Tuple[float, ...]] = {
    1: (0.500, 0.500),
    2: (0.278, 0.418, 0.304),
    3: (0.165, 0.320, 0.305, 0.210),
    4: (0.102, 0.239, 0.276, 0.225, 0.158),
    5: (0.065, 0.179, 0.238, 0.220, 0.172, 0.126),
    6: (0.043, 0.132, 0.200, 0.207, 0.176, 0.137, 0.105),
    7: (0.028, 0.098, 0.165, 0.189, 0.173, 0.143, 0.114, 0.090),
    8: (0.019, 0.073, 0.135, 0.168, 0.166, 0.145, 0.119, 0.097, 0.078),
}

#: Table 1 — experimental rows (10 trees x 1000 uniform points).
TABLE1_EXPERIMENT: Dict[int, Tuple[float, ...]] = {
    1: (0.536, 0.464),
    2: (0.326, 0.427, 0.247),
    3: (0.213, 0.364, 0.273, 0.149),
    4: (0.139, 0.293, 0.264, 0.184, 0.120),
    5: (0.084, 0.217, 0.241, 0.204, 0.151, 0.104),
    6: (0.050, 0.150, 0.201, 0.215, 0.176, 0.127, 0.081),
    7: (0.034, 0.110, 0.177, 0.214, 0.187, 0.143, 0.091, 0.044),
    8: (0.024, 0.086, 0.151, 0.206, 0.194, 0.156, 0.100, 0.049, 0.034),
}

#: Table 2 — (experimental occupancy, theoretical occupancy, % diff).
TABLE2: Dict[int, Tuple[float, float, float]] = {
    1: (0.46, 0.50, 7.2),
    2: (0.92, 1.03, 10.8),
    3: (1.36, 1.56, 12.9),
    4: (1.85, 2.10, 11.6),
    5: (2.44, 2.63, 7.4),
    6: (3.03, 3.17, 4.4),
    7: (3.44, 3.72, 7.5),
    8: (3.79, 4.25, 10.8),
}

#: Table 3 — occupancy by node size, m=1, 10 trees x 1000 points,
#: rows (depth, mean empty nodes, mean full nodes, occupancy).
TABLE3: List[Tuple[int, float, float, float]] = [
    (4, 6.6, 20.1, 0.75),
    (5, 300.2, 354.3, 0.54),
    (6, 533.7, 411.6, 0.44),
    (7, 225.4, 144.9, 0.39),
    (8, 71.5, 49.6, 0.41),
    (9, 16.1, 19.5, 0.55),
]

#: Tables 4/5 — (points, mean nodes, mean occupancy), m=8, 10 trees.
TABLE4_UNIFORM: List[Tuple[int, float, float]] = [
    (64, 16.9, 3.79),
    (90, 21.7, 4.15),
    (128, 35.2, 3.64),
    (181, 54.4, 3.33),
    (256, 67.3, 3.80),
    (362, 90.7, 3.99),
    (512, 145.0, 3.53),
    (724, 216.4, 3.35),
    (1024, 266.5, 3.84),
    (1448, 350.8, 4.13),
    (2048, 560.5, 3.65),
    (2896, 876.6, 3.30),
    (4096, 1075.6, 3.81),
]

TABLE5_GAUSSIAN: List[Tuple[int, float, float]] = [
    (64, 17.2, 3.72),
    (90, 21.7, 4.15),
    (128, 35.2, 3.63),
    (181, 52.3, 3.46),
    (256, 68.2, 3.75),
    (362, 99.1, 3.65),
    (512, 144.1, 3.55),
    (724, 203.5, 3.56),
    (1024, 275.5, 3.72),
    (1448, 393.4, 3.68),
    (2048, 565.3, 3.62),
    (2896, 784.9, 3.69),
    (4096, 1104.7, 3.71),
]

#: The sample-size grid of Tables 4/5.
PHASING_SIZES: List[int] = [row[0] for row in TABLE4_UNIFORM]

#: The paper's simple-PR experimental split (53% empty / 47% full).
SIMPLE_PR_EMPTY_FRACTION: float = 0.53
