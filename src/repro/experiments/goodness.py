"""Goodness-of-fit between censuses and model distributions.

The paper compares distributions by eye ("agree fairly well").  This
module makes the comparison a statistic: Pearson chi-squared of an
observed node census against a model's expected distribution, with the
usual small-expected-count bucketing, plus total-variation and
Kullback–Leibler summaries.

Caveat baked into the API: PR-tree leaves are *not* independent draws
(siblings are produced together), so the chi-squared p-value is a
heuristic index of fit, not a calibrated test level — the docstring of
:func:`chi_squared_fit` repeats this and the tests check behavior, not
significance dogma.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np
from scipy import stats

from ..quadtree.census import OccupancyCensus


@dataclass(frozen=True)
class FitResult:
    """A census-vs-model comparison."""

    statistic: float
    p_value: float
    dof: int
    total_variation: float
    kl_divergence: float

    @property
    def plausible(self) -> bool:
        """Heuristic: fit not rejected at the 1% index level."""
        return self.p_value > 0.01


def _pooled(counts: np.ndarray, expected: np.ndarray,
            min_expected: float) -> Tuple[np.ndarray, np.ndarray]:
    """Merge adjacent classes until every expected count is adequate."""
    pooled_counts: List[float] = []
    pooled_expected: List[float] = []
    acc_c, acc_e = 0.0, 0.0
    for c, e in zip(counts, expected):
        acc_c += c
        acc_e += e
        if acc_e >= min_expected:
            pooled_counts.append(acc_c)
            pooled_expected.append(acc_e)
            acc_c, acc_e = 0.0, 0.0
    if acc_e > 0:
        if pooled_expected:
            pooled_counts[-1] += acc_c
            pooled_expected[-1] += acc_e
        else:
            pooled_counts.append(acc_c)
            pooled_expected.append(acc_e)
    return np.asarray(pooled_counts), np.asarray(pooled_expected)


def chi_squared_fit(
    census: OccupancyCensus,
    model_distribution: Sequence[float],
    min_expected: float = 5.0,
) -> FitResult:
    """Pearson chi-squared of a census against a model distribution.

    Classes with expected counts below ``min_expected`` are pooled with
    neighbors (the standard smallness fix).  Because tree leaves are
    correlated, treat the p-value as a fit index, not a test level.
    """
    observed = np.asarray(census.counts, dtype=float)
    probabilities = np.asarray(model_distribution, dtype=float)
    if probabilities.shape != observed.shape:
        raise ValueError(
            f"model has {probabilities.shape[0]} classes, census "
            f"{observed.shape[0]}"
        )
    if abs(probabilities.sum() - 1.0) > 1e-6:
        raise ValueError("model distribution must sum to 1")
    total = observed.sum()
    if total <= 0:
        raise ValueError("census has no nodes")
    expected = probabilities * total
    obs_pooled, exp_pooled = _pooled(observed, expected, min_expected)
    if len(obs_pooled) < 2:
        raise ValueError(
            "fewer than two classes survive pooling; census too small"
        )
    dof = len(obs_pooled) - 1
    statistic = float(((obs_pooled - exp_pooled) ** 2 / exp_pooled).sum())
    p_value = float(stats.chi2.sf(statistic, dof))

    observed_p = observed / total
    tv = float(0.5 * np.abs(observed_p - probabilities).sum())
    mask = observed_p > 0
    kl = float(
        (observed_p[mask]
         * np.log(observed_p[mask] / np.maximum(probabilities[mask], 1e-300))
         ).sum()
    )
    return FitResult(statistic, p_value, dof, tv, kl)
