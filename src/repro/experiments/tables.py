"""Regenerators for every table in the paper's evaluation.

Each ``run_table*`` function reruns the experiment with this package's
structures and solvers and returns a result object carrying three
layers: the model's prediction, the fresh simulation, and the paper's
published numbers.  Each ``format_table*`` renders the result in the
paper's layout so the two can be eyeballed side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.aging import DepthRow, depth_occupancy_table
from ..runtime import RuntimeConfig
from ..core.population import PopulationModel
from ..core.transform import post_split_average_occupancy
from . import paper_data
from .harness import (
    GeneratorFactory,
    gaussian_factory,
    occupancy_vs_size,
    run_trials,
    uniform_factory,
)

#: The node capacities the paper sweeps in Tables 1 and 2.
CAPACITIES: Tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7, 8)


# ----------------------------------------------------------------------
# Table 1 — expected distribution, theory vs experiment
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Table1Row:
    """One bucket size's distribution triple."""

    capacity: int
    theory: Tuple[float, ...]
    experiment: Tuple[float, ...]
    paper_theory: Tuple[float, ...]
    paper_experiment: Tuple[float, ...]


def run_table1(
    trials: int = 10,
    n_points: int = 1000,
    seed: int = 1987,
    capacities: Sequence[int] = CAPACITIES,
    runtime: Optional[RuntimeConfig] = None,
    engine: Optional[str] = None,
) -> List[Table1Row]:
    """Reproduce Table 1: expected distributions for m = 1..8."""
    rows: List[Table1Row] = []
    for m in capacities:
        model = PopulationModel(capacity=m)
        trial_set = run_trials(
            m, n_points=n_points, trials=trials, seed=seed + m * 100_000,
            runtime=runtime, engine=engine,
        )
        rows.append(
            Table1Row(
                capacity=m,
                theory=tuple(model.expected_distribution()),
                experiment=trial_set.mean_proportions(),
                paper_theory=paper_data.TABLE1_THEORY.get(m, ()),
                paper_experiment=paper_data.TABLE1_EXPERIMENT.get(m, ()),
            )
        )
    return rows


def _format_vector(vec: Sequence[float]) -> str:
    return "(" + ", ".join(f"{v:.3f}" for v in vec) + ")"


def format_table1(rows: Sequence[Table1Row]) -> str:
    """Render rows in the paper's Table 1 layout."""
    lines = [
        "Table 1 -- Expected distribution in PR quadtrees",
        "theoretical (thy) and experimental (exp); paper values in []",
        "",
    ]
    for row in rows:
        lines.append(f"bucket size {row.capacity}")
        lines.append(f"  thy {_format_vector(row.theory)}")
        if row.paper_theory:
            lines.append(f"      [{_format_vector(row.paper_theory)}]")
        lines.append(f"  exp {_format_vector(row.experiment)}")
        if row.paper_experiment:
            lines.append(f"      [{_format_vector(row.paper_experiment)}]")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Table 2 — average node occupancy
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Table2Row:
    """One bucket size's occupancy summary."""

    capacity: int
    experimental: float
    theoretical: float
    percent_difference: float
    paper_experimental: float
    paper_theoretical: float
    paper_percent_difference: float


def run_table2(
    trials: int = 10,
    n_points: int = 1000,
    seed: int = 1987,
    capacities: Sequence[int] = CAPACITIES,
    runtime: Optional[RuntimeConfig] = None,
    engine: Optional[str] = None,
) -> List[Table2Row]:
    """Reproduce Table 2: average node occupancy for m = 1..8.

    Uses the same seeds as :func:`run_table1` so the two tables report
    one consistent experiment, as in the paper.
    """
    rows: List[Table2Row] = []
    for m in capacities:
        model = PopulationModel(capacity=m)
        trial_set = run_trials(
            m, n_points=n_points, trials=trials, seed=seed + m * 100_000,
            runtime=runtime, engine=engine,
        )
        experimental = trial_set.mean_occupancy()
        theoretical = model.average_occupancy()
        percent = 100.0 * (theoretical - experimental) / experimental
        paper = paper_data.TABLE2.get(m, (float("nan"),) * 3)
        rows.append(
            Table2Row(
                capacity=m,
                experimental=experimental,
                theoretical=theoretical,
                percent_difference=percent,
                paper_experimental=paper[0],
                paper_theoretical=paper[1],
                paper_percent_difference=paper[2],
            )
        )
    return rows


def format_table2(rows: Sequence[Table2Row]) -> str:
    """Render rows in the paper's Table 2 layout."""
    lines = [
        "Table 2 -- Average Node Occupancy (paper values in [])",
        f"{'m':>2}  {'experimental':>14}  {'theoretical':>13}  {'% diff':>8}",
    ]
    for row in rows:
        lines.append(
            f"{row.capacity:>2}  "
            f"{row.experimental:>6.2f} [{row.paper_experimental:.2f}]  "
            f"{row.theoretical:>5.2f} [{row.paper_theoretical:.2f}]  "
            f"{row.percent_difference:>5.1f} [{row.paper_percent_difference:.1f}]"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Table 3 — occupancy by node size (aging)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Table3Result:
    """Per-depth occupancy rows plus the model's aging floor."""

    rows: List[DepthRow]
    post_split_floor: float
    paper_rows: List[Tuple[int, float, float, float]]


def run_table3(
    trials: int = 10,
    n_points: int = 1000,
    seed: int = 1987,
    capacity: int = 1,
    max_depth: int = 9,
    runtime: Optional[RuntimeConfig] = None,
    engine: Optional[str] = None,
) -> Table3Result:
    """Reproduce Table 3: occupancy by depth for m=1, truncated trees.

    The ``max_depth=9`` truncation reproduces the paper's
    implementation artifact (anomalously high occupancy at depth 9).
    """
    trial_set = run_trials(
        capacity,
        n_points=n_points,
        trials=trials,
        seed=seed,
        max_depth=max_depth,
        collect_depth=True,
        runtime=runtime,
        engine=engine,
    )
    rows = depth_occupancy_table(trial_set.depth_censuses)
    return Table3Result(
        rows=rows,
        post_split_floor=post_split_average_occupancy(capacity),
        paper_rows=list(paper_data.TABLE3),
    )


def format_table3(result: Table3Result) -> str:
    """Render in the paper's Table 3 layout (m=1: n0/n1 columns)."""
    lines = [
        "Table 3 -- Occupancy by node size (paper values in [])",
        f"{'depth':>5}  {'n0 nodes':>10}  {'n1 nodes':>10}  {'occupancy':>9}",
    ]
    paper = {row[0]: row for row in result.paper_rows}
    for row in result.rows:
        p = paper.get(row.depth)
        paper_occ = f" [{p[3]:.2f}]" if p else ""
        lines.append(
            f"{row.depth:>5}  {row.counts[0]:>10.1f}  {row.counts[1]:>10.1f}  "
            f"{row.occupancy:>9.2f}{paper_occ}"
        )
    lines.append(
        f"model's post-split floor: {result.post_split_floor:.2f} "
        "(deep rows should approach this before the truncation artifact)"
    )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Tables 4 and 5 — occupancy vs tree size (phasing)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PhasingRow:
    """One sample size's node count and occupancy."""

    n_points: int
    nodes: float
    occupancy: float
    paper_nodes: float
    paper_occupancy: float


def _run_phasing(
    generator_factory: GeneratorFactory,
    paper_rows: Sequence[Tuple[int, float, float]],
    trials: int,
    seed: int,
    capacity: int,
    sizes: Optional[Sequence[int]],
    runtime: Optional[RuntimeConfig] = None,
    engine: Optional[str] = None,
) -> List[PhasingRow]:
    if sizes is None:
        sizes = [row[0] for row in paper_rows]
    paper_map: Dict[int, Tuple[int, float, float]] = {
        row[0]: row for row in paper_rows
    }
    sweep = occupancy_vs_size(
        capacity,
        sizes,
        trials=trials,
        seed=seed,
        generator_factory=generator_factory,
        runtime=runtime,
        engine=engine,
    )
    rows = []
    for point in sweep:
        paper = paper_map.get(point.n_points)
        rows.append(
            PhasingRow(
                n_points=point.n_points,
                nodes=point.mean_nodes,
                occupancy=point.mean_occupancy,
                paper_nodes=paper[1] if paper else float("nan"),
                paper_occupancy=paper[2] if paper else float("nan"),
            )
        )
    return rows


def run_table4(
    trials: int = 10,
    seed: int = 1987,
    capacity: int = 8,
    sizes: Optional[Sequence[int]] = None,
    runtime: Optional[RuntimeConfig] = None,
    engine: Optional[str] = None,
) -> List[PhasingRow]:
    """Reproduce Table 4: occupancy vs size, uniform data, m=8."""
    return _run_phasing(
        uniform_factory(), paper_data.TABLE4_UNIFORM, trials, seed, capacity,
        sizes, runtime=runtime, engine=engine,
    )


def run_table5(
    trials: int = 10,
    seed: int = 1987,
    capacity: int = 8,
    sizes: Optional[Sequence[int]] = None,
    runtime: Optional[RuntimeConfig] = None,
    engine: Optional[str] = None,
) -> List[PhasingRow]:
    """Reproduce Table 5: occupancy vs size, Gaussian data, m=8."""
    return _run_phasing(
        gaussian_factory(), paper_data.TABLE5_GAUSSIAN, trials, seed, capacity,
        sizes, runtime=runtime, engine=engine,
    )


def format_phasing_table(rows: Sequence[PhasingRow], title: str) -> str:
    """Render a Table 4/5-style sweep."""
    lines = [
        title,
        f"{'points':>7}  {'nodes':>16}  {'occupancy':>16}",
    ]
    for row in rows:
        lines.append(
            f"{row.n_points:>7}  "
            f"{row.nodes:>7.1f} [{row.paper_nodes:>6.1f}]  "
            f"{row.occupancy:>6.2f} [{row.paper_occupancy:>4.2f}]"
        )
    return "\n".join(lines)
