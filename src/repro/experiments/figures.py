"""Regenerators for the paper's figures.

- Figure 1 — the four-point PR quadtree illustration, rendered as an
  ASCII block diagram (:func:`render_quadtree_ascii`).
- Figure 2 — average occupancy vs n on a semi-log axis, uniform data
  (the plotted form of Table 4).
- Figure 3 — the same for Gaussian data (Table 5), showing damping.

Figures 2/3 are produced as data series plus an ASCII semi-log plot —
no plotting dependencies are available offline, and the quantitative
claims (oscillation period, damping) are asserted numerically by the
phasing module, not by eyeballing pixels.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.phasing import OscillationFit, damping_ratio, fit_oscillation
from ..geometry import Point
from ..quadtree import PRQuadtree
from ..runtime import RuntimeConfig
from .tables import PhasingRow, run_table4, run_table5

#: The paper's Figure 1 point set (quarter positions inside the square).
FIGURE1_POINTS: Tuple[Point, ...] = (
    Point(0.125, 0.875),  # upper left block
    Point(0.625, 0.625),  # NE quadrant, its SW sub-block
    Point(0.875, 0.625),  # NE quadrant, its SE sub-block
    Point(0.625, 0.125),  # lower right quadrant
)


def build_figure1_tree() -> PRQuadtree:
    """The Figure 1 tree: four points, capacity 1, recursive quartering."""
    tree = PRQuadtree(capacity=1)
    tree.insert_many(FIGURE1_POINTS)
    return tree


def render_quadtree_ascii(tree: PRQuadtree, resolution: int = 32) -> str:
    """Draw a planar PR quadtree's block structure as ASCII art.

    Blocks are outlined on a ``resolution x resolution`` character
    grid; stored points are marked ``*``.  Requires a 2-d tree whose
    height fits the resolution (each level halves the block size).
    """
    if tree.dim != 2:
        raise ValueError("ASCII rendering is planar only")
    if resolution < 2 or resolution & (resolution - 1):
        raise ValueError("resolution must be a power of two >= 2")
    needed = 1 << tree.height()
    if needed > resolution:
        raise ValueError(
            f"tree height {tree.height()} needs resolution >= {needed}"
        )
    # grid is (resolution+1) x (resolution+1) corner characters
    grid = [[" "] * (resolution + 1) for _ in range(resolution + 1)]
    bounds = tree.bounds

    def to_col(x: float) -> int:
        return round((x - bounds.lo.x) / bounds.side(0) * resolution)

    def to_row(y: float) -> int:
        # row 0 is the top of the square
        return round((bounds.hi.y - y) / bounds.side(1) * resolution)

    # Two passes: all horizontal edges, then verticals — a crossing
    # renders as '+' only where a vertical truly meets a horizontal.
    edges = [
        (to_col(r.lo.x), to_col(r.hi.x), to_row(r.hi.y), to_row(r.lo.y))
        for r, _, _ in tree.leaves()
    ]
    for left, right, top, bottom in edges:
        for col in range(left, right + 1):
            grid[top][col] = "-"
            grid[bottom][col] = "-"
    for left, right, top, bottom in edges:
        for row in range(top, bottom + 1):
            for col in (left, right):
                grid[row][col] = (
                    "+" if grid[row][col] in ("-", "+") else "|"
                )
    for p in tree.points():
        grid[to_row(p.y)][to_col(p.x)] = "*"
    return "\n".join("".join(row).rstrip() for row in grid)


@dataclass(frozen=True)
class FigureSeries:
    """A figure's data: the sweep rows, an oscillation fit, and the
    damping ratio of the measured series."""

    rows: List[PhasingRow]
    fit: OscillationFit
    damping: float

    def sizes(self) -> List[int]:
        """Sample sizes (the x axis)."""
        return [r.n_points for r in self.rows]

    def occupancies(self) -> List[float]:
        """Mean occupancies (the y axis)."""
        return [r.occupancy for r in self.rows]


def _series_from_rows(rows: List[PhasingRow]) -> FigureSeries:
    sizes = [r.n_points for r in rows]
    occ = [r.occupancy for r in rows]
    return FigureSeries(
        rows=rows,
        fit=fit_oscillation(sizes, occ),
        damping=damping_ratio(sizes, occ),
    )


def run_figure2(
    trials: int = 10, seed: int = 1987, capacity: int = 8,
    sizes: Optional[Sequence[int]] = None,
    runtime: Optional["RuntimeConfig"] = None,
    engine: Optional[str] = None,
) -> FigureSeries:
    """Figure 2: uniform-data occupancy oscillation (m=8)."""
    return _series_from_rows(
        run_table4(trials, seed, capacity, sizes, runtime=runtime,
                   engine=engine)
    )


def run_figure3(
    trials: int = 10, seed: int = 1987, capacity: int = 8,
    sizes: Optional[Sequence[int]] = None,
    runtime: Optional["RuntimeConfig"] = None,
    engine: Optional[str] = None,
) -> FigureSeries:
    """Figure 3: Gaussian-data occupancy series (m=8), damping out."""
    return _series_from_rows(
        run_table5(trials, seed, capacity, sizes, runtime=runtime,
                   engine=engine)
    )


def render_semilog_ascii(
    sizes: Sequence[int],
    occupancies: Sequence[float],
    width: int = 60,
    height: int = 16,
    y_range: Optional[Tuple[float, float]] = None,
) -> str:
    """A Figure 2/3-style semi-log scatter in ASCII.

    x is log(n); y is average occupancy.  Each sample is an ``o``.
    """
    if len(sizes) != len(occupancies) or len(sizes) < 2:
        raise ValueError("need matching series of at least 2 samples")
    logs = [math.log(n) for n in sizes]
    lo_x, hi_x = min(logs), max(logs)
    if y_range is None:
        lo_y, hi_y = min(occupancies), max(occupancies)
        pad = 0.05 * (hi_y - lo_y or 1.0)
        lo_y, hi_y = lo_y - pad, hi_y + pad
    else:
        lo_y, hi_y = y_range
    grid = [[" "] * width for _ in range(height)]
    for lx, y in zip(logs, occupancies):
        col = round((lx - lo_x) / (hi_x - lo_x) * (width - 1))
        row = round((hi_y - y) / (hi_y - lo_y) * (height - 1))
        row = min(max(row, 0), height - 1)
        grid[row][col] = "o"
    lines = [f"{hi_y:6.2f} +" + "".join(grid[0])]
    lines.extend("       |" + "".join(row) for row in grid[1:-1])
    lines.append(f"{lo_y:6.2f} +" + "".join(grid[-1]))
    axis = "        " + "-" * width
    labels = f"        n={sizes[0]}" + " " * max(
        width - len(f"n={sizes[0]}") - len(f"n={sizes[-1]}"), 1
    ) + f"n={sizes[-1]}"
    return "\n".join(lines + [axis, labels])
