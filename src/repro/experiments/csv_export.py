"""CSV export for experiment results.

Flat-file output so sweeps can be re-plotted outside Python.  Every
``run_table*`` result type has a writer; all writers stream through
the standard :mod:`csv` module and accept any text file object.
"""

from __future__ import annotations

import csv
from typing import IO, Sequence

from .harness import SizeSweepPoint
from .tables import PhasingRow, Table1Row, Table2Row, Table3Result


def write_table1_csv(rows: Sequence[Table1Row], out: IO[str]) -> None:
    """One line per (capacity, occupancy class): theory vs experiment."""
    writer = csv.writer(out)
    writer.writerow(
        ["capacity", "occupancy", "theory", "experiment",
         "paper_theory", "paper_experiment"]
    )
    for row in rows:
        for occupancy in range(row.capacity + 1):
            writer.writerow(
                [
                    row.capacity,
                    occupancy,
                    f"{row.theory[occupancy]:.6f}",
                    f"{row.experiment[occupancy]:.6f}",
                    f"{row.paper_theory[occupancy]:.3f}"
                    if row.paper_theory else "",
                    f"{row.paper_experiment[occupancy]:.3f}"
                    if row.paper_experiment else "",
                ]
            )


def write_table2_csv(rows: Sequence[Table2Row], out: IO[str]) -> None:
    """One line per capacity: the occupancy summary."""
    writer = csv.writer(out)
    writer.writerow(
        ["capacity", "experimental", "theoretical", "percent_difference",
         "paper_experimental", "paper_theoretical",
         "paper_percent_difference"]
    )
    for row in rows:
        writer.writerow(
            [
                row.capacity,
                f"{row.experimental:.6f}",
                f"{row.theoretical:.6f}",
                f"{row.percent_difference:.3f}",
                f"{row.paper_experimental:.2f}",
                f"{row.paper_theoretical:.2f}",
                f"{row.paper_percent_difference:.1f}",
            ]
        )


def write_table3_csv(result: Table3Result, out: IO[str]) -> None:
    """One line per depth: counts and occupancy."""
    writer = csv.writer(out)
    capacity = len(result.rows[0].counts) - 1 if result.rows else 0
    header = ["depth"] + [f"n{i}_nodes" for i in range(capacity + 1)] + [
        "occupancy", "post_split_floor"
    ]
    writer.writerow(header)
    for row in result.rows:
        writer.writerow(
            [row.depth]
            + [f"{c:.3f}" for c in row.counts]
            + [f"{row.occupancy:.4f}", f"{result.post_split_floor:.4f}"]
        )


def write_phasing_csv(rows: Sequence[PhasingRow], out: IO[str]) -> None:
    """One line per sample size: Tables 4/5 layout."""
    writer = csv.writer(out)
    writer.writerow(
        ["points", "nodes", "occupancy", "paper_nodes", "paper_occupancy"]
    )
    for row in rows:
        writer.writerow(
            [
                row.n_points,
                f"{row.nodes:.3f}",
                f"{row.occupancy:.4f}",
                f"{row.paper_nodes:.1f}",
                f"{row.paper_occupancy:.2f}",
            ]
        )


def write_sweep_csv(points: Sequence[SizeSweepPoint], out: IO[str]) -> None:
    """One line per sweep sample (generic occupancy-vs-size output)."""
    writer = csv.writer(out)
    writer.writerow(["points", "mean_nodes", "mean_occupancy"])
    for point in points:
        writer.writerow(
            [
                point.n_points,
                f"{point.mean_nodes:.3f}",
                f"{point.mean_occupancy:.4f}",
            ]
        )
