"""``python -m repro query`` — the batch-query experiments.

Two subcommands over :mod:`repro.experiments.queries`:

- ``run`` — one seeded query sweep: range / k-NN / partial-match
  batches answered by the object tree and/or the vectorized kernel,
  with bit-identical-parity verification and per-op speedups;
- ``pm-law`` — the partial-match scaling-law experiment: fit the
  empirical exponent ``beta_hat`` across (dim, capacity) grids and
  print it next to the trie theory ``(d-s)/d`` and the point-quadtree
  ``beta*`` (Flajolet-Puech / Curien-Joseph).

Both record into the run database (``kind="query"``) unless opted out,
one stage row per measurement, so ``repro db trend --stage
query.range.vector.n20000`` tracks query latency across commits
(``runs.env`` carries the git SHA).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from ..obs import Tracer, tracing
from .queries import (
    ENGINES,
    format_partial_match_law,
    format_query_sweep,
    run_partial_match_law,
    run_query_sweep,
)


def _int_list(text: str) -> List[int]:
    try:
        return [int(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated integers, got {text!r}"
        )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro query",
        description="Batch query experiments: engine parity sweeps and "
                    "partial-match scaling laws.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run", help="time one seeded query batch on each engine"
    )
    run.add_argument("--n", type=int, default=20000,
                     help="stored points (default: %(default)s)")
    run.add_argument("--capacity", type=int, default=8,
                     help="bucket capacity m (default: %(default)s)")
    run.add_argument("--dim", type=int, default=2,
                     help="space dimension (default: %(default)s)")
    run.add_argument("--seed", type=int, default=1987,
                     help="workload RNG seed (default: %(default)s)")
    run.add_argument("--queries", type=int, default=256,
                     help="queries per operation (default: %(default)s)")
    run.add_argument("--k", type=int, default=8,
                     help="neighbors per k-NN query (default: %(default)s)")
    run.add_argument("--side", type=float, default=0.1,
                     help="range-box side as a fraction of the region "
                          "(default: %(default)s)")
    run.add_argument("--pm-axes", type=_int_list, default=[0],
                     metavar="A,B,...",
                     help="fixed axes for partial match "
                          "(default: %(default)s)")
    run.add_argument("--engine", choices=list(ENGINES) + ["both"],
                     default="both",
                     help="which engine(s) to run (default: %(default)s)")
    run.add_argument("--no-verify", action="store_true",
                     help="skip the bit-identical parity check")
    run.add_argument("--json", default=None, metavar="PATH",
                     help="also write the report as JSON here")

    law = sub.add_parser(
        "pm-law", help="fit the partial-match exponent across (dim, m)"
    )
    law.add_argument("--dims", type=_int_list, default=[2, 3],
                     metavar="D,D,...",
                     help="dimensions to fit (default: 2,3)")
    law.add_argument("--capacities", type=_int_list, default=[1, 4, 8],
                     metavar="M,M,...",
                     help="bucket capacities to fit (default: 1,4,8)")
    law.add_argument("--sizes", type=_int_list, default=None,
                     metavar="N,N,...",
                     help="point-set sizes (default: a doubling grid "
                          "1000..32000)")
    law.add_argument("--s", type=int, default=1,
                     help="fixed coordinates per query "
                          "(default: %(default)s)")
    law.add_argument("--queries", type=int, default=128,
                     help="queries per configuration "
                          "(default: %(default)s)")
    law.add_argument("--trials", type=int, default=3,
                     help="point sets per size (default: %(default)s)")
    law.add_argument("--seed", type=int, default=1987,
                     help="RNG seed (default: %(default)s)")
    law.add_argument("--json", default=None, metavar="PATH",
                     help="also write the fits as JSON here")

    for cmd in (run, law):
        cmd.add_argument("--db", default=None, metavar="PATH",
                         help="run database recording this experiment "
                              "(default: $REPRO_DB or "
                              "~/.local/share/repro/runs.sqlite)")
        cmd.add_argument("--no-db", action="store_true",
                         help="do not record into the run database "
                              "(also: REPRO_NO_DB=1)")
        cmd.add_argument("--verbose", action="store_true",
                         help="print the instrumentation span tree")
    return parser


def _record(
    args: argparse.Namespace,
    label: str,
    stages: Sequence[Dict[str, Any]],
    wall_s: float,
    engine: Optional[str] = None,
) -> None:
    """Persist one query experiment as a ``kind="query"`` run; every
    failure degrades to a warning (recording is an observer)."""
    from ..rundb import RunDB, current_git_sha, resolve_db_path

    db_path = resolve_db_path(args.db, no_db=args.no_db)
    if db_path is None:
        return
    sha = current_git_sha()
    try:
        with RunDB(db_path) as db:
            run_id = db.begin_run(
                kind="query",
                label=label,
                engine=engine,
                env={"git_sha": sha} if sha else None,
            )
            for stage in stages:
                db.record_stage(
                    run_id,
                    stage["stage"],
                    stage.get("wall_s"),
                    None,
                    stage.get("payload"),
                )
            db.finish_run(run_id, wall_s=wall_s)
    except Exception as exc:
        print(f"warning: run DB query record failed: {exc}",
              file=sys.stderr)


def _cmd_run(args: argparse.Namespace) -> int:
    engines = ENGINES if args.engine == "both" else (args.engine,)
    started = time.perf_counter()
    report = run_query_sweep(
        n=args.n, capacity=args.capacity, dim=args.dim, seed=args.seed,
        n_queries=args.queries, k=args.k, side=args.side,
        pm_axes=args.pm_axes, engines=engines,
        verify=not args.no_verify and len(engines) == 2,
    )
    wall = time.perf_counter() - started
    print(format_query_sweep(report))
    stages = []
    for r in report.results:
        payload: Dict[str, Any] = {
            "n_queries": r.n_queries, "hits": r.hits, "qps": r.qps,
        }
        speedup = report.speedup(r.op)
        if speedup is not None:
            payload["speedup"] = speedup
        stages.append({
            "stage": f"query.{r.op}.{r.engine}.n{report.n_points}",
            "wall_s": r.wall_s,
            "payload": payload,
        })
    _record(args, "query run", stages, wall,
            engine=args.engine if args.engine != "both" else None)
    if args.json:
        Path(args.json).write_text(
            json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote report to {args.json}")
    return 0


def _cmd_pm_law(args: argparse.Namespace) -> int:
    started = time.perf_counter()
    fits = run_partial_match_law(
        dims=args.dims, capacities=args.capacities, sizes=args.sizes,
        s=args.s, n_queries=args.queries, trials=args.trials,
        seed=args.seed,
    )
    wall = time.perf_counter() - started
    print(format_partial_match_law(fits))
    stages = [
        {
            "stage": f"query.pm_law.d{fit.dim}.m{fit.capacity}",
            "wall_s": None,
            "payload": {
                "beta_hat": fit.beta_hat,
                "beta_pr": fit.beta_pr,
                "beta_point": fit.beta_point,
                "s": fit.s,
            },
        }
        for fit in fits
    ]
    _record(args, "query pm-law", stages, wall, engine="vector")
    if args.json:
        Path(args.json).write_text(
            json.dumps([f.to_dict() for f in fits], indent=2,
                       sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote fits to {args.json}")
    return 0


_HANDLERS = {
    "run": _cmd_run,
    "pm-law": _cmd_pm_law,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handler = _HANDLERS[args.command]
    try:
        if args.verbose:
            tracer = Tracer()
            with tracing(tracer):
                status = handler(args)
            print()
            print(tracer.render())
            return status
        return handler(args)
    except (ValueError, AssertionError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
