"""Query-side experiments: engine parity sweeps and partial-match laws.

Two experiments, both driven by the seeded
:class:`~repro.workloads.queries.QueryWorkload` so the object tree and
the vectorized kernel answer *exactly* the same queries:

- :func:`run_query_sweep` — build one uniform point set, answer one
  batch each of range / k-NN / partial-match queries with the object
  engine (:class:`~repro.quadtree.PRQuadtree` walks) and the vector
  engine (:class:`~repro.kernels.QueryKernel` batch kernels), verify
  the answers are bit-identical, and report walls + speedups.  This is
  the experiment behind ``repro query run`` and the bench suite's
  ``queries`` stage.

- :func:`run_partial_match_law` — measure the partial-match cost law.
  A partial match fixing ``s`` of ``d`` coordinates visits
  ``Theta(n^beta)`` blocks; for random *point* quadtrees the exponent
  is the root in (0, 1) of ``(beta+2)^s * (beta+1)^(d-s) = 2^d``
  (Flajolet & Puech 1986; for d=2, s=1 that is
  ``beta* = (sqrt(17)-3)/2 ~= 0.5616``, the constant whose limit law
  Curien & Joseph later pinned down), while for PR quadtrees — tries
  over uniform bits, the structure this repo studies — the classical
  digital-tree exponent is ``(d-s)/d``.  The experiment fits
  ``log2 E[nodes visited]`` against ``log2 n`` across a doubling grid
  of n for each (d, m) configuration, using the kernel's exact
  tree-visit accounting, and prints beta-hat next to both predictions.
  The PR tree should track ``(d-s)/d`` and sit *below* the point-tree
  ``beta*`` — bucketing (m) shifts the intercept, not the slope.

Runs record into the run database as ``kind="query"`` rows with one
stage per (operation, engine, n) — ``repro db trend --stage
query.range.vector.n20000`` then tracks query latency across PRs.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..geometry import Point
from ..kernels import QueryKernel
from ..quadtree import PRQuadtree
from ..workloads import UniformPoints
from ..workloads.queries import QueryWorkload

ENGINES = ("object", "vector")


# ----------------------------------------------------------------------
# parity sweep
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class QueryOpResult:
    """One (operation, engine) measurement."""

    op: str                # "range" | "knn" | "partial_match"
    engine: str            # "object" | "vector"
    n_points: int
    n_queries: int
    wall_s: float
    hits: int              # total points returned across the batch

    @property
    def qps(self) -> float:
        """Queries answered per second."""
        return self.n_queries / self.wall_s if self.wall_s > 0 else 0.0


@dataclass(frozen=True)
class QuerySweepReport:
    """All measurements from one :func:`run_query_sweep` call."""

    n_points: int
    capacity: int
    dim: int
    seed: int
    k: int
    side: float
    pm_axes: Tuple[int, ...]
    build_tree_s: Optional[float]
    build_kernel_s: Optional[float]
    results: List[QueryOpResult]
    verified: bool

    def result(self, op: str, engine: str) -> Optional[QueryOpResult]:
        for r in self.results:
            if r.op == op and r.engine == engine:
                return r
        return None

    def speedup(self, op: str) -> Optional[float]:
        """object wall / vector wall for one operation (None unless
        both engines ran)."""
        obj = self.result(op, "object")
        vec = self.result(op, "vector")
        if obj is None or vec is None or vec.wall_s <= 0:
            return None
        return obj.wall_s / vec.wall_s

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "n_points": self.n_points,
            "capacity": self.capacity,
            "dim": self.dim,
            "seed": self.seed,
            "k": self.k,
            "side": self.side,
            "pm_axes": list(self.pm_axes),
            "build_tree_s": self.build_tree_s,
            "build_kernel_s": self.build_kernel_s,
            "verified": self.verified,
            "ops": {},
        }
        for r in self.results:
            entry = out["ops"].setdefault(r.op, {})
            entry[r.engine] = {
                "wall_s": r.wall_s,
                "n_queries": r.n_queries,
                "hits": r.hits,
                "qps": r.qps,
            }
            speedup = self.speedup(r.op)
            if speedup is not None:
                entry["speedup"] = speedup
        return out


def _canonical(points: Sequence[Point], dim: int) -> np.ndarray:
    arr = np.array(
        [tuple(p) for p in points], dtype=np.float64
    ).reshape(len(points), dim)
    if arr.shape[0] > 1:
        arr = arr[np.lexsort(tuple(arr[:, a] for a in range(dim - 1, -1, -1)))]
    return arr


def run_query_sweep(
    n: int = 20000,
    capacity: int = 8,
    dim: int = 2,
    seed: int = 1987,
    n_queries: int = 256,
    k: int = 8,
    side: float = 0.1,
    pm_axes: Sequence[int] = (0,),
    engines: Sequence[str] = ENGINES,
    verify: bool = True,
) -> QuerySweepReport:
    """Answer one seeded query batch with each engine and time it.

    With ``verify`` (the default when both engines run), every object
    answer is compared — after the canonical lexicographic sort — to
    the kernel's, element for element; a mismatch raises.  ``nearest``
    answers are order-sensitive (distance, then point order) and are
    compared as returned.
    """
    for engine in engines:
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}")
    pm_axes = tuple(pm_axes)
    points = UniformPoints(dim=dim, seed=seed).generate(n)
    workload = QueryWorkload(dim=dim, seed=seed)
    rects = workload.range_rects(n_queries, side=side)
    knn = workload.knn_points(n_queries)
    pm_vals = workload.partial_match_values(n_queries, pm_axes)

    tree: Optional[PRQuadtree] = None
    build_tree_s: Optional[float] = None
    if "object" in engines:
        start = time.perf_counter()
        tree = PRQuadtree(capacity=capacity, dim=dim)
        for p in points:
            tree.insert(p)
        build_tree_s = time.perf_counter() - start

    kernel: Optional[QueryKernel] = None
    build_kernel_s: Optional[float] = None
    if "vector" in engines:
        start = time.perf_counter()
        kernel = QueryKernel.build(points, capacity=capacity, dim=dim)
        build_kernel_s = time.perf_counter() - start

    results: List[QueryOpResult] = []
    obj_answers: Dict[str, Any] = {}
    vec_answers: Dict[str, Any] = {}

    if tree is not None:
        start = time.perf_counter()
        range_hits = [tree.range_search(r) for r in rects]
        wall = time.perf_counter() - start
        results.append(QueryOpResult(
            "range", "object", n, n_queries, wall,
            sum(len(h) for h in range_hits),
        ))
        obj_answers["range"] = range_hits

        knn_points = [Point(*row) for row in knn]
        start = time.perf_counter()
        knn_hits = [tree.nearest(q, k) for q in knn_points]
        wall = time.perf_counter() - start
        results.append(QueryOpResult(
            "knn", "object", n, n_queries, wall,
            sum(len(h) for h in knn_hits),
        ))
        obj_answers["knn"] = knn_hits

        start = time.perf_counter()
        pm_hits = [
            tree.partial_match(dict(zip(pm_axes, row)))
            for row in pm_vals
        ]
        wall = time.perf_counter() - start
        results.append(QueryOpResult(
            "partial_match", "object", n, n_queries, wall,
            sum(len(h) for h in pm_hits),
        ))
        obj_answers["partial_match"] = pm_hits

    if kernel is not None:
        start = time.perf_counter()
        range_arrs = kernel.batch_range(rects)
        wall = time.perf_counter() - start
        results.append(QueryOpResult(
            "range", "vector", n, n_queries, wall,
            sum(int(a.shape[0]) for a in range_arrs),
        ))
        vec_answers["range"] = range_arrs

        start = time.perf_counter()
        knn_arrs = kernel.batch_knn(knn, k=k)
        wall = time.perf_counter() - start
        results.append(QueryOpResult(
            "knn", "vector", n, n_queries, wall,
            sum(int(a.shape[0]) for a in knn_arrs),
        ))
        vec_answers["knn"] = knn_arrs

        start = time.perf_counter()
        pm_result = kernel.batch_partial_match(pm_axes, pm_vals)
        wall = time.perf_counter() - start
        results.append(QueryOpResult(
            "partial_match", "vector", n, n_queries, wall,
            sum(int(a.shape[0]) for a in pm_result.matches),
        ))
        vec_answers["partial_match"] = pm_result.matches

    verified = False
    if verify and tree is not None and kernel is not None:
        for i in range(n_queries):
            expected = _canonical(obj_answers["range"][i], dim)
            got = vec_answers["range"][i]
            if not np.array_equal(expected, got):
                raise AssertionError(
                    f"range parity failure on query {i}: "
                    f"object {expected.shape[0]} points, "
                    f"vector {got.shape[0]}"
                )
            # nearest is order-sensitive: compare as returned
            expected = np.array(
                [tuple(p) for p in obj_answers["knn"][i]],
                dtype=np.float64,
            ).reshape(-1, dim)
            if not np.array_equal(expected, vec_answers["knn"][i]):
                raise AssertionError(f"knn parity failure on query {i}")
            expected = _canonical(obj_answers["partial_match"][i], dim)
            if not np.array_equal(
                expected, vec_answers["partial_match"][i]
            ):
                raise AssertionError(
                    f"partial-match parity failure on query {i}"
                )
        verified = True

    return QuerySweepReport(
        n_points=n, capacity=capacity, dim=dim, seed=seed, k=k,
        side=side, pm_axes=pm_axes, build_tree_s=build_tree_s,
        build_kernel_s=build_kernel_s, results=results,
        verified=verified,
    )


def format_query_sweep(report: QuerySweepReport) -> str:
    """The sweep as an aligned text table."""
    lines = [
        f"query sweep: n={report.n_points}, m={report.capacity}, "
        f"dim={report.dim}, {report.results[0].n_queries if report.results else 0} "
        f"queries/op, k={report.k}, "
        f"pm axes {list(report.pm_axes)}, seed {report.seed}",
    ]
    builds = []
    if report.build_tree_s is not None:
        builds.append(f"object build {report.build_tree_s * 1e3:8.1f} ms")
    if report.build_kernel_s is not None:
        builds.append(f"kernel build {report.build_kernel_s * 1e3:8.1f} ms")
    if builds:
        lines.append("  " + " | ".join(builds))
    header = (
        f"  {'op':<14} {'engine':<7} {'wall':>10} {'q/s':>10} {'hits':>9}"
    )
    lines.append(header)
    for r in report.results:
        lines.append(
            f"  {r.op:<14} {r.engine:<7} {r.wall_s * 1e3:8.1f}ms "
            f"{r.qps:10.0f} {r.hits:9d}"
        )
    for op in ("range", "knn", "partial_match"):
        speedup = report.speedup(op)
        if speedup is not None:
            lines.append(f"  {op:<14} vector speedup {speedup:6.1f}x")
    lines.append(
        "  parity: verified bit-identical"
        if report.verified
        else "  parity: not checked"
    )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# partial-match scaling law
# ----------------------------------------------------------------------


def point_quadtree_exponent(dim: int, s: int) -> float:
    """The random point-quadtree partial-match exponent: the root in
    (0, 1) of ``(b+2)^s * (b+1)^(d-s) = 2^d`` (Flajolet-Puech; the
    d=2, s=1 case is Curien-Joseph's ``beta* = (sqrt(17)-3)/2``)."""
    if not 0 < s < dim:
        raise ValueError(f"need 0 < s < dim, got s={s}, dim={dim}")
    target = dim * math.log(2.0)

    def f(b: float) -> float:
        return s * math.log(b + 2.0) + (dim - s) * math.log(b + 1.0)

    lo, hi = 0.0, 1.0
    for _ in range(80):
        mid = 0.5 * (lo + hi)
        if f(mid) < target:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def pr_quadtree_exponent(dim: int, s: int) -> float:
    """The PR-quadtree (trie) partial-match exponent on uniform data:
    ``(d - s) / d`` — at depth L the query hyperplane meets
    ``2^((d-s)L)`` of the ``2^(dL)`` blocks."""
    if not 0 < s < dim:
        raise ValueError(f"need 0 < s < dim, got s={s}, dim={dim}")
    return (dim - s) / dim


@dataclass(frozen=True)
class PartialMatchFit:
    """One (dim, capacity) row of the scaling-law experiment."""

    dim: int
    capacity: int
    s: int                       # number of fixed axes
    sizes: Tuple[int, ...]
    mean_nodes: Tuple[float, ...]  # E[nodes visited] at each size
    beta_hat: float              # fitted slope of log2(nodes) vs log2(n)
    beta_pr: float               # trie theory (d-s)/d
    beta_point: float            # point-quadtree root (Curien-Joseph)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "dim": self.dim,
            "capacity": self.capacity,
            "s": self.s,
            "sizes": list(self.sizes),
            "mean_nodes": list(self.mean_nodes),
            "beta_hat": self.beta_hat,
            "beta_pr": self.beta_pr,
            "beta_point": self.beta_point,
        }


def run_partial_match_law(
    dims: Sequence[int] = (2, 3),
    capacities: Sequence[int] = (1, 4, 8),
    sizes: Optional[Sequence[int]] = None,
    s: int = 1,
    n_queries: int = 128,
    trials: int = 3,
    seed: int = 1987,
) -> List[PartialMatchFit]:
    """Fit the partial-match exponent for each (dim, capacity).

    For every configuration and every n in ``sizes``, ``trials``
    independent point sets are built (seeds ``seed + t``) and one
    seeded batch of ``n_queries`` partial matches (axes ``0..s-1``
    fixed at uniform values) is answered by the kernel; the cost is
    its exact ``nodes_visited`` accounting, averaged over queries and
    trials.  ``beta_hat`` is the least-squares slope of
    ``log2(mean nodes)`` against ``log2 n``.
    """
    if sizes is None:
        sizes = (1000, 2000, 4000, 8000, 16000, 32000)
    sizes = tuple(int(x) for x in sizes)
    if len(sizes) < 2:
        raise ValueError("need at least two sizes to fit a slope")
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    fits: List[PartialMatchFit] = []
    for dim in dims:
        if not 0 < s < dim:
            raise ValueError(
                f"s={s} must satisfy 0 < s < dim for dim={dim}"
            )
        axes = tuple(range(s))
        for capacity in capacities:
            means: List[float] = []
            for n in sizes:
                total = 0.0
                for t in range(trials):
                    pts = UniformPoints(
                        dim=dim, seed=seed + t
                    ).generate_array(n)
                    kernel = QueryKernel.build(
                        pts, capacity=capacity, dim=dim
                    )
                    vals = QueryWorkload(
                        dim=dim, seed=seed + t
                    ).partial_match_values(n_queries, axes)
                    result = kernel.batch_partial_match(axes, vals)
                    total += float(result.nodes_visited.mean())
                means.append(total / trials)
            xs = np.log2(np.array(sizes, dtype=np.float64))
            ys = np.log2(np.array(means, dtype=np.float64))
            beta_hat = float(np.polyfit(xs, ys, 1)[0])
            fits.append(PartialMatchFit(
                dim=dim, capacity=capacity, s=s, sizes=sizes,
                mean_nodes=tuple(means), beta_hat=beta_hat,
                beta_pr=pr_quadtree_exponent(dim, s),
                beta_point=point_quadtree_exponent(dim, s),
            ))
    return fits


def format_partial_match_law(fits: Sequence[PartialMatchFit]) -> str:
    """The fitted exponents as an aligned table, theory alongside."""
    if not fits:
        return "partial-match law: no configurations"
    first = fits[0]
    lines = [
        f"partial-match scaling law: s={first.s} fixed axis(es), "
        f"n in {list(first.sizes)}",
        "  E[nodes visited] ~ n^beta; beta_hat fitted, "
        "beta_pr = (d-s)/d (trie theory), "
        "beta* = point-quadtree root (Flajolet-Puech / Curien-Joseph)",
        f"  {'dim':>3} {'m':>3} {'beta_hat':>9} {'beta_pr':>8} "
        f"{'beta*':>7} {'nodes@min':>10} {'nodes@max':>10}",
    ]
    for fit in fits:
        lines.append(
            f"  {fit.dim:>3} {fit.capacity:>3} {fit.beta_hat:9.4f} "
            f"{fit.beta_pr:8.4f} {fit.beta_point:7.4f} "
            f"{fit.mean_nodes[0]:10.1f} {fit.mean_nodes[-1]:10.1f}"
        )
    return "\n".join(lines)
