"""Programmatic reproduction report — paper vs. measured, as markdown.

Reruns every table at the requested protocol and renders one document
summarizing agreement, in the same shape as the repository's
EXPERIMENTS.md.  Used by ``python -m repro report`` and handy for
regression-tracking the reproduction itself.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..core import fit_oscillation, oscillation_period
from .tables import (
    PhasingRow,
    Table1Row,
    Table2Row,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
)


def _vector(values: Sequence[float]) -> str:
    return ", ".join(f"{v:.3f}" for v in values)


def _table1_section(rows: List[Table1Row]) -> List[str]:
    lines = [
        "## Table 1 — expected distributions",
        "",
        "| m | theory max dev vs paper | experiment max dev vs paper |",
        "|---|---|---|",
    ]
    for row in rows:
        theory_dev = max(
            abs(a - b) for a, b in zip(row.theory, row.paper_theory)
        )
        experiment_dev = max(
            abs(a - b) for a, b in zip(row.experiment, row.paper_experiment)
        )
        lines.append(
            f"| {row.capacity} | {theory_dev:.4f} | {experiment_dev:.4f} |"
        )
    return lines


def _table2_section(rows: List[Table2Row]) -> List[str]:
    lines = [
        "## Table 2 — average node occupancy",
        "",
        "| m | exp (ours [paper]) | thy (ours [paper]) | %diff (ours [paper]) |",
        "|---|---|---|---|",
    ]
    for row in rows:
        lines.append(
            f"| {row.capacity} "
            f"| {row.experimental:.2f} [{row.paper_experimental:.2f}] "
            f"| {row.theoretical:.2f} [{row.paper_theoretical:.2f}] "
            f"| {row.percent_difference:.1f} "
            f"[{row.paper_percent_difference:.1f}] |"
        )
    over = all(row.percent_difference > 0 for row in rows)
    lines.append("")
    lines.append(
        f"Aging signature (theory uniformly above experiment): "
        f"{'reproduced' if over else 'NOT reproduced'}."
    )
    return lines


def _phasing_section(
    rows: List[PhasingRow], title: str, expect_damping: bool
) -> List[str]:
    sizes = [r.n_points for r in rows]
    occ = [r.occupancy for r in rows]
    fit = fit_oscillation(sizes, occ)
    period = oscillation_period(sizes, occ)
    lines = [
        f"## {title}",
        "",
        "| n | occupancy (ours [paper]) |",
        "|---|---|",
    ]
    for row in rows:
        lines.append(
            f"| {row.n_points} | {row.occupancy:.2f} "
            f"[{row.paper_occupancy:.2f}] |"
        )
    lines.append("")
    lines.append(
        f"Fitted oscillation: mean {fit.mean:.2f}, amplitude "
        f"{fit.amplitude:.2f}, best-fit period x{period:.1f} in n."
    )
    if expect_damping:
        late = fit_oscillation(sizes[6:], occ[6:]).amplitude
        lines.append(f"Late-half amplitude: {late:.3f} (damping probe).")
    return lines


def generate_report(trials: int = 10, seed: int = 1987) -> str:
    """Rerun all tables and render the agreement report as markdown."""
    sections: List[str] = [
        "# Reproduction report",
        "",
        f"Protocol: {trials} trees per configuration, seed {seed}.",
        "Paper: Nelson & Samet, SIGMOD 1987.",
        "",
    ]
    sections.extend(_table1_section(run_table1(trials=trials, seed=seed)))
    sections.append("")
    sections.extend(_table2_section(run_table2(trials=trials, seed=seed)))
    sections.append("")

    table3 = run_table3(trials=trials, seed=seed)
    sections.extend(
        [
            "## Table 3 — occupancy by depth (aging)",
            "",
            "| depth | occupancy (ours) | paper |",
            "|---|---|---|",
        ]
    )
    paper3 = {depth: occ for depth, _, _, occ in table3.paper_rows}
    for row in table3.rows:
        paper_value = paper3.get(row.depth)
        paper_text = f"{paper_value:.2f}" if paper_value is not None else "—"
        sections.append(
            f"| {row.depth} | {row.occupancy:.2f} | {paper_text} |"
        )
    sections.append("")
    sections.append(
        f"Post-split floor (model): {table3.post_split_floor:.2f}."
    )
    sections.append("")

    sections.extend(
        _phasing_section(
            run_table4(trials=trials, seed=seed),
            "Table 4 / Figure 2 — phasing, uniform",
            expect_damping=False,
        )
    )
    sections.append("")
    sections.extend(
        _phasing_section(
            run_table5(trials=trials, seed=seed),
            "Table 5 / Figure 3 — phasing, Gaussian",
            expect_damping=True,
        )
    )
    sections.append("")
    return "\n".join(sections)
