"""The grid file (Nievergelt et al. 1984) — comparator substrate."""

from .gridfile import GridFile

__all__ = ["GridFile"]
