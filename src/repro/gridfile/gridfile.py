"""The grid file (Nievergelt, Hinterberger & Sevcik, 1984).

A symmetric multi-key bucketing structure: d *linear scales* (sorted
boundary lists, one per axis) partition space into a grid of cells, and
a *directory* maps every cell to a bucket of fixed capacity.  Several
cells may share one bucket, provided the union of their cells is a box
(the "bucket region" convexity invariant).

On overflow the structure first tries to split the bucket's region
between two buckets along an existing scale boundary; only when the
region is a single cell does it refine a scale, which slices an entire
slab of the grid (the grid file's signature cost).  This "two-level"
behavior is what Regnier's analysis (cited in the paper) studies, and
its occupancy census is directly comparable to the PR quadtree's.
"""

from __future__ import annotations

import bisect
import itertools
from typing import Dict, Iterator, List, Optional, Tuple

from ..geometry import Point, Rect
from ..quadtree.census import OccupancyCensus

Cell = Tuple[int, ...]


class _Bucket:
    """A fixed-capacity bucket covering a box-shaped set of cells."""

    __slots__ = ("cells", "points")

    def __init__(self) -> None:
        self.cells: List[Cell] = []
        self.points: List[Point] = []


class GridFile:
    """A grid file storing distinct points over a half-open box.

    Parameters
    ----------
    bucket_capacity:
        Maximum points per bucket.
    bounds:
        The indexed region (default unit square).
    dim:
        Dimensionality when ``bounds`` is omitted.
    """

    def __init__(
        self,
        bucket_capacity: int = 4,
        bounds: Optional[Rect] = None,
        dim: int = 2,
    ):
        if bucket_capacity < 1:
            raise ValueError(
                f"bucket_capacity must be >= 1, got {bucket_capacity}"
            )
        if bounds is None:
            bounds = Rect.unit(dim)
        self._capacity = bucket_capacity
        self._bounds = bounds
        # Interior boundaries per axis; axis i has len(scales[i])+1 slabs.
        self._scales: List[List[float]] = [[] for _ in range(bounds.dim)]
        root = _Bucket()
        root.cells = [tuple([0] * bounds.dim)]
        self._directory: Dict[Cell, _Bucket] = {root.cells[0]: root}
        self._size = 0

    @property
    def bucket_capacity(self) -> int:
        """Maximum points per bucket."""
        return self._capacity

    @property
    def bounds(self) -> Rect:
        """The indexed region."""
        return self._bounds

    @property
    def dim(self) -> int:
        """Dimensionality."""
        return self._bounds.dim

    def scales(self) -> List[List[float]]:
        """Copies of the linear scales (interior boundaries per axis)."""
        return [list(s) for s in self._scales]

    def __len__(self) -> int:
        return self._size

    def __contains__(self, p: Point) -> bool:
        return self.contains(p)

    # ------------------------------------------------------------------

    def _cell_of(self, p: Point) -> Cell:
        return tuple(
            bisect.bisect_right(self._scales[i], p[i]) for i in range(self.dim)
        )

    def _slab_bounds(self, axis: int, index: int) -> Tuple[float, float]:
        scale = self._scales[axis]
        lo = self._bounds.lo[axis] if index == 0 else scale[index - 1]
        hi = self._bounds.hi[axis] if index == len(scale) else scale[index]
        return lo, hi

    def cell_rect(self, cell: Cell) -> Rect:
        """The geometric box of one grid cell."""
        bounds = [self._slab_bounds(i, cell[i]) for i in range(self.dim)]
        return Rect.from_bounds(bounds)

    # ------------------------------------------------------------------

    def insert(self, p: Point) -> bool:
        """Insert a distinct point; ``False`` if already stored."""
        if not self._bounds.contains_point(p):
            raise ValueError(f"{p!r} outside grid bounds {self._bounds!r}")
        bucket = self._directory[self._cell_of(p)]
        if p in bucket.points:
            return False
        bucket.points.append(p)
        self._size += 1
        while len(bucket.points) > self._capacity:
            split = self._split(bucket)
            if split is None:
                break  # pinned: float precision cannot separate these
            bucket = split
        return True

    def insert_many(self, points) -> int:
        """Insert points in order; returns how many were new."""
        return sum(1 for p in points if self.insert(p))

    def contains(self, p: Point) -> bool:
        """Exact-match lookup — exactly two 'disk accesses' by design:
        the directory cell, then the bucket."""
        if not self._bounds.contains_point(p):
            return False
        return p in self._directory[self._cell_of(p)].points

    def delete(self, p: Point) -> bool:
        """Remove a point; ``False`` if absent.

        Underfull buckets merge with a neighbor along some axis when
        the union of their regions is a box and their combined load
        fits (the grid file buddy-merge policy).
        """
        if not self._bounds.contains_point(p):
            return False
        bucket = self._directory[self._cell_of(p)]
        if p not in bucket.points:
            return False
        bucket.points.remove(p)
        self._size -= 1
        self._try_merge(bucket)
        return True

    def range_search(self, query: Rect) -> List[Point]:
        """All stored points inside the half-open ``query`` box."""
        if query.dim != self.dim:
            raise ValueError(f"query dimension {query.dim} != {self.dim}")
        out: List[Point] = []
        seen = set()
        for cell in self._cells_overlapping(query):
            bucket = self._directory[cell]
            if id(bucket) in seen:
                continue
            seen.add(id(bucket))
            out.extend(q for q in bucket.points if query.contains_point(q))
        return out

    def nearest(self, q: Point, k: int = 1) -> List[Point]:
        """The ``k`` stored points nearest to ``q``.

        Buckets are visited in order of distance from ``q`` to their
        (box-shaped) region, with the usual best-first pruning.
        Exact-distance ties are broken by point order (lexicographic
        coordinates), matching ``PRQuadtree.nearest`` — the answer is
        a pure function of the stored point set.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if q.dim != self.dim:
            raise ValueError(f"query dimension {q.dim} != {self.dim}")
        candidates = []
        for _, cells, pts in self._distinct_buckets_info():
            los = [min(c[i] for c in cells) for i in range(self.dim)]
            his = [max(c[i] for c in cells) for i in range(self.dim)]
            region = Rect.from_bounds(
                [
                    (self._slab_bounds(i, los[i])[0],
                     self._slab_bounds(i, his[i])[1])
                    for i in range(self.dim)
                ]
            )
            candidates.append((region.distance_to_point(q), pts))
        candidates.sort(key=lambda pair: pair[0])
        best: List[Tuple[float, Tuple[float, ...], Point]] = []
        for region_dist, pts in candidates:
            if len(best) == k and region_dist > best[-1][0]:
                break
            for p in pts:
                key = (p.distance_to(q), p.coords)
                if len(best) < k or key < (best[-1][0], best[-1][1]):
                    best.append(key + (p,))
                    best.sort(key=lambda t: (t[0], t[1]))
                    del best[k:]
        return [p for _, _, p in best]

    def _cells_overlapping(self, query: Rect) -> Iterator[Cell]:
        ranges = []
        for i in range(self.dim):
            lo_idx = bisect.bisect_right(self._scales[i], query.lo[i])
            # hi is exclusive; a boundary exactly at query.hi is not entered.
            hi_idx = bisect.bisect_left(self._scales[i], query.hi[i])
            ranges.append(range(lo_idx, hi_idx + 1))
        yield from itertools.product(*ranges)

    def points(self) -> Iterator[Point]:
        """Iterate over all stored points."""
        for _, _, bucket_points in self._distinct_buckets_info():
            yield from bucket_points

    # ------------------------------------------------------------------

    def _distinct_buckets_info(self) -> Iterator[Tuple[int, List[Cell], List[Point]]]:
        seen = set()
        for bucket in self._directory.values():
            if id(bucket) in seen:
                continue
            seen.add(id(bucket))
            yield (id(bucket), bucket.cells, bucket.points)

    def bucket_count(self) -> int:
        """Number of distinct buckets."""
        return sum(1 for _ in self._distinct_buckets_info())

    def directory_size(self) -> int:
        """Number of grid cells (directory entries)."""
        return len(self._directory)

    def occupancy_census(self) -> OccupancyCensus:
        """Census of distinct buckets by occupancy."""
        occupancies = [
            len(pts) for _, _, pts in self._distinct_buckets_info()
        ]
        return OccupancyCensus.from_occupancies(occupancies, self._capacity)

    def average_occupancy(self) -> float:
        """Mean points per bucket."""
        return self._size / self.bucket_count()

    def validate(self) -> None:
        """Invariants: the directory covers exactly the grid; each
        bucket's cells form a box; every point lies in one of its
        bucket's cells; no bucket over capacity."""
        shape = tuple(len(s) + 1 for s in self._scales)
        expected_cells = set(itertools.product(*(range(n) for n in shape)))
        assert set(self._directory) == expected_cells, "directory/grid mismatch"
        total = 0
        for bucket_id, cells, pts in self._distinct_buckets_info():
            if len(pts) > self._capacity:
                # pinned bucket: legal only when no representable
                # boundary can separate its points on any axis
                probe = _Bucket()
                probe.points = pts
                assert all(
                    self._best_boundary(probe, axis) is None
                    for axis in range(self.dim)
                ), "overfull bucket is separable; split was skipped"
            total += len(pts)
            los = [min(c[i] for c in cells) for i in range(self.dim)]
            his = [max(c[i] for c in cells) for i in range(self.dim)]
            box = set(
                itertools.product(*(range(lo, hi + 1) for lo, hi in zip(los, his)))
            )
            assert set(cells) == box, "bucket region is not a box"
            for p in pts:
                assert self._cell_of(p) in cells
        assert total == self._size

    # ------------------------------------------------------------------

    def _split(self, bucket: _Bucket) -> Optional[_Bucket]:
        """Split an overfull bucket; returns the half that still holds
        the most points (the caller re-checks overflow on it), or
        ``None`` when no representable boundary can separate the
        points (the bucket pins, overfull)."""
        axis = self._region_split_axis(bucket)
        if axis is None:
            if not self._refine_scale(bucket):
                return None
            axis = self._region_split_axis(bucket)
            assert axis is not None, "scale refinement must widen the region"
        lo = min(c[axis] for c in bucket.cells)
        hi = max(c[axis] for c in bucket.cells)
        mid = (lo + hi) // 2  # cells with index > mid go to the new bucket
        new = _Bucket()
        keep_cells = [c for c in bucket.cells if c[axis] <= mid]
        move_cells = [c for c in bucket.cells if c[axis] > mid]
        bucket.cells = keep_cells
        new.cells = move_cells
        for c in move_cells:
            self._directory[c] = new
        boundary = self._slab_bounds(axis, mid)[1]
        keep_pts = [p for p in bucket.points if p[axis] < boundary]
        move_pts = [p for p in bucket.points if p[axis] >= boundary]
        bucket.points = keep_pts
        new.points = move_pts
        return bucket if len(bucket.points) >= len(new.points) else new

    def _region_split_axis(self, bucket: _Bucket) -> Optional[int]:
        """An axis along which the bucket's region spans >= 2 cells,
        preferring the axis where the split separates points best."""
        candidates = []
        for axis in range(self.dim):
            lo = min(c[axis] for c in bucket.cells)
            hi = max(c[axis] for c in bucket.cells)
            if hi > lo:
                candidates.append(axis)
        if not candidates:
            return None
        if len(candidates) == 1:
            return candidates[0]

        def imbalance(axis: int) -> Tuple[float, int]:
            lo = min(c[axis] for c in bucket.cells)
            hi = max(c[axis] for c in bucket.cells)
            mid = (lo + hi) // 2
            boundary = self._slab_bounds(axis, mid)[1]
            below = sum(1 for p in bucket.points if p[axis] < boundary)
            return (abs(below - (len(bucket.points) - below)), axis)

        return min(imbalance(a) for a in candidates)[1]

    def _best_boundary(self, bucket: _Bucket, axis: int) -> Optional[Tuple[int, float]]:
        """The most balanced representable boundary separating the
        bucket's points along ``axis``: ``(imbalance, boundary)``, or
        ``None`` if no float strictly between two coordinate values
        exists (identical or adjacent-float coordinates)."""
        values = sorted(p[axis] for p in bucket.points)
        best: Optional[Tuple[int, float]] = None
        for i in range(len(values) - 1):
            a, b = values[i], values[i + 1]
            if a == b:
                continue
            boundary = (a + b) / 2.0
            if not a < boundary <= b:
                continue  # adjacent floats: nothing representable between
            below = i + 1
            imbalance = abs(below - (len(values) - below))
            if best is None or imbalance < best[0]:
                best = (imbalance, boundary)
        return best

    def _refine_scale(self, bucket: _Bucket) -> bool:
        """Add one boundary through the bucket's (single-cell) region,
        slicing the whole slab of the grid.

        The boundary is data-adaptive (linear scales are arbitrary in a
        grid file): the representable value best balancing the bucket's
        points, on the axis that balances best — ties to the axis with
        fewest scale lines, keeping the grid roughly symmetric (the
        grid file's stated design goal).  Returns ``False`` when no
        axis offers a separating boundary (the caller pins the bucket).
        """
        candidates: List[Tuple[int, int, int, float]] = []
        for axis in range(self.dim):
            best = self._best_boundary(bucket, axis)
            if best is not None:
                imbalance, boundary = best
                candidates.append(
                    (imbalance, len(self._scales[axis]), axis, boundary)
                )
        if not candidates:
            return False
        _, _, axis, boundary = min(candidates)
        insert_at = bisect.bisect_right(self._scales[axis], boundary)
        self._scales[axis].insert(insert_at, boundary)
        # Re-index the directory: slab `insert_at` becomes two slabs.
        old_directory = self._directory
        self._directory = {}
        rewritten = set()
        for cell_coords, b in old_directory.items():
            idx = cell_coords[axis]
            if idx < insert_at:
                new_cells = [cell_coords]
            elif idx > insert_at:
                shifted = list(cell_coords)
                shifted[axis] = idx + 1
                new_cells = [tuple(shifted)]
            else:
                left = list(cell_coords)
                right = list(cell_coords)
                right[axis] = idx + 1
                new_cells = [tuple(left), tuple(right)]
            for nc in new_cells:
                self._directory[nc] = b
            if id(b) not in rewritten:
                rewritten.add(id(b))
                b.cells = []
        for cell_coords, b in self._directory.items():
            b.cells.append(cell_coords)
        return True

    def _try_merge(self, bucket: _Bucket) -> None:
        """Merge ``bucket`` with a box-compatible neighbor if the pair
        fits in one bucket.  Scales are never removed (standard grid
        file behavior — deallocation of scale lines is rarely done)."""
        if len(bucket.points) * 2 > self._capacity:
            return
        for axis in range(self.dim):
            lo = min(c[axis] for c in bucket.cells)
            hi = max(c[axis] for c in bucket.cells)
            for neighbor_idx in (lo - 1, hi + 1):
                if neighbor_idx < 0 or neighbor_idx > len(self._scales[axis]):
                    continue
                probe = list(bucket.cells[0])
                probe[axis] = neighbor_idx
                other = self._directory.get(tuple(probe))
                if other is None or other is bucket:
                    continue
                if len(bucket.points) + len(other.points) > self._capacity:
                    continue
                if not self._union_is_box(bucket, other):
                    continue
                other.points.extend(bucket.points)
                for c in bucket.cells:
                    self._directory[c] = other
                other.cells.extend(bucket.cells)
                return

    def _union_is_box(self, a: _Bucket, b: _Bucket) -> bool:
        cells = set(a.cells) | set(b.cells)
        los = [min(c[i] for c in cells) for i in range(self.dim)]
        his = [max(c[i] for c in cells) for i in range(self.dim)]
        box = set(
            itertools.product(*(range(lo, hi + 1) for lo, hi in zip(los, his)))
        )
        return cells == box
