"""EXCELL — extendible cell directory (Tamminen, 1981).

The geometric analogue of extendible hashing, and the third comparator
the paper cites (Tamminen 1983 analyzed its performance statistically).
Space is divided into ``2^L`` congruent cells by halving axes in
round-robin order; a directory maps each cell to a bucket, and several
cells may share a bucket at a coarser *local level*.  When a bucket at
full resolution overflows, the **whole directory doubles** — this all-
at-once doubling is what distinguishes EXCELL from the grid file's
one-slab refinement, and makes its occupancy dynamics match extendible
hashing's (phasing with period log 2 in n).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..geometry import Point, Rect
from ..quadtree.census import OccupancyCensus


class _Bucket:
    """A bucket at a local level; covers ``2^(L-level)`` cells."""

    __slots__ = ("level", "points")

    def __init__(self, level: int):
        self.level = level
        self.points: List[Point] = []


class Excell:
    """EXCELL structure storing distinct points over a half-open box.

    Cell addressing uses interleaved bits: at global level L the cell
    index of a point is the first L bits of the round-robin interleaved
    binary expansions of its (normalized) coordinates — axis ``k % dim``
    contributes bit ``k``.  A bucket at local level l covers all cells
    sharing its leading l bits, exactly like extendible hashing buddies.
    """

    def __init__(
        self,
        bucket_capacity: int = 4,
        bounds: Optional[Rect] = None,
        dim: int = 2,
        max_level: int = 22,
    ):
        if bucket_capacity < 1:
            raise ValueError(
                f"bucket_capacity must be >= 1, got {bucket_capacity}"
            )
        if bounds is None:
            bounds = Rect.unit(dim)
        if max_level < 1:
            raise ValueError("max_level must be >= 1")
        self._capacity = bucket_capacity
        self._bounds = bounds
        self._max_level = max_level
        self._level = 0
        self._directory: List[_Bucket] = [_Bucket(0)]
        self._size = 0

    @property
    def bucket_capacity(self) -> int:
        """Maximum points per bucket."""
        return self._capacity

    @property
    def bounds(self) -> Rect:
        """The indexed region."""
        return self._bounds

    @property
    def dim(self) -> int:
        """Dimensionality."""
        return self._bounds.dim

    @property
    def level(self) -> int:
        """Global level L; the directory has 2^L cells."""
        return self._level

    def directory_size(self) -> int:
        """Number of directory cells."""
        return len(self._directory)

    def __len__(self) -> int:
        return self._size

    def __contains__(self, p: Point) -> bool:
        return self.contains(p)

    # ------------------------------------------------------------------

    def _cell_index(self, p: Point, level: int) -> int:
        """Leading ``level`` interleaved halving bits of ``p``."""
        idx = 0
        lo = list(self._bounds.lo.coords)
        hi = list(self._bounds.hi.coords)
        for k in range(level):
            axis = k % self.dim
            mid = (lo[axis] + hi[axis]) / 2.0
            idx <<= 1
            if p[axis] >= mid:
                idx |= 1
                lo[axis] = mid
            else:
                hi[axis] = mid
        return idx

    def _bucket_for(self, p: Point) -> _Bucket:
        return self._directory[self._cell_index(p, self._level)]

    def cell_rect(self, index: int) -> Rect:
        """The geometric box of directory cell ``index`` at level L."""
        if not 0 <= index < len(self._directory):
            raise ValueError(f"cell index {index} out of range")
        lo = list(self._bounds.lo.coords)
        hi = list(self._bounds.hi.coords)
        for k in range(self._level):
            axis = k % self.dim
            mid = (lo[axis] + hi[axis]) / 2.0
            bit = (index >> (self._level - 1 - k)) & 1
            if bit:
                lo[axis] = mid
            else:
                hi[axis] = mid
        return Rect.from_bounds(list(zip(lo, hi)))

    # ------------------------------------------------------------------

    def insert(self, p: Point) -> bool:
        """Insert a distinct point; ``False`` if already stored."""
        if not self._bounds.contains_point(p):
            raise ValueError(f"{p!r} outside bounds {self._bounds!r}")
        bucket = self._bucket_for(p)
        if p in bucket.points:
            return False
        bucket.points.append(p)
        self._size += 1
        pending = [bucket]
        while pending:
            b = pending.pop()
            if len(b.points) <= self._capacity:
                continue
            if b.level >= self._max_level:
                raise RuntimeError(
                    "EXCELL max_level reached; points too clustered"
                )
            pending.extend(self._split(b))
        return True

    def insert_many(self, points) -> int:
        """Insert points in order; returns how many were new."""
        return sum(1 for p in points if self.insert(p))

    def contains(self, p: Point) -> bool:
        """Exact-match lookup (one directory probe, one bucket probe)."""
        if not self._bounds.contains_point(p):
            return False
        return p in self._bucket_for(p).points

    def delete(self, p: Point) -> bool:
        """Remove a point; buddies merge when their union fits.

        The directory never shrinks (Tamminen's formulation — directory
        halving is possible but costs a full rebuild; omitted as in the
        original system)."""
        if not self._bounds.contains_point(p):
            return False
        bucket = self._bucket_for(p)
        if p not in bucket.points:
            return False
        bucket.points.remove(p)
        self._size -= 1
        self._try_merge(bucket)
        return True

    def range_search(self, query: Rect) -> List[Point]:
        """All stored points inside the half-open ``query`` box."""
        out: List[Point] = []
        seen = set()
        for idx, bucket in enumerate(self._directory):
            # A shared bucket is only harvested at a slot whose cell
            # intersects the query — mark it seen at that point, not on
            # first sight, or its intersecting slots may be skipped.
            if id(bucket) in seen:
                continue
            if self.cell_rect(idx).intersects(query):
                seen.add(id(bucket))
                out.extend(q for q in bucket.points if query.contains_point(q))
        return out

    def points(self) -> Iterator[Point]:
        """Iterate over all stored points."""
        seen = set()
        for bucket in self._directory:
            if id(bucket) in seen:
                continue
            seen.add(id(bucket))
            yield from bucket.points

    def nearest(self, q: Point, k: int = 1) -> List[Point]:
        """The ``k`` stored points nearest to ``q``.

        Visits distinct buckets in order of distance from ``q`` to the
        nearest of their cells, pruning once ``k`` closer points exist.
        Exact-distance ties are broken by point order (lexicographic
        coordinates), matching ``PRQuadtree.nearest``.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if q.dim != self.dim:
            raise ValueError(f"query dimension {q.dim} != {self.dim}")
        bucket_dist: Dict[int, float] = {}
        bucket_points: Dict[int, List[Point]] = {}
        for idx, bucket in enumerate(self._directory):
            d = self.cell_rect(idx).distance_to_point(q)
            key = id(bucket)
            if key not in bucket_dist or d < bucket_dist[key]:
                bucket_dist[key] = d
                bucket_points[key] = bucket.points
        ordered = sorted(bucket_dist, key=bucket_dist.get)
        best: List[Tuple[float, Tuple[float, ...], Point]] = []
        for key in ordered:
            if len(best) == k and bucket_dist[key] > best[-1][0]:
                break
            for p in bucket_points[key]:
                cand = (p.distance_to(q), p.coords)
                if len(best) < k or cand < (best[-1][0], best[-1][1]):
                    best.append(cand + (p,))
                    best.sort(key=lambda t: (t[0], t[1]))
                    del best[k:]
        return [p for _, _, p in best]

    # ------------------------------------------------------------------

    def buckets(self) -> List[Tuple[int, int]]:
        """Distinct buckets as ``(local_level, occupancy)`` pairs."""
        out = []
        seen = set()
        for bucket in self._directory:
            if id(bucket) in seen:
                continue
            seen.add(id(bucket))
            out.append((bucket.level, len(bucket.points)))
        return out

    def bucket_count(self) -> int:
        """Number of distinct buckets."""
        return len(self.buckets())

    def occupancy_census(self) -> OccupancyCensus:
        """Census of distinct buckets by occupancy."""
        occupancies = [occ for _, occ in self.buckets()]
        return OccupancyCensus.from_occupancies(occupancies, self._capacity)

    def average_occupancy(self) -> float:
        """Mean points per bucket."""
        return self._size / self.bucket_count()

    def validate(self) -> None:
        """Invariants: directory size 2^L; a bucket of level l occupies
        the 2^(L-l) contiguous aligned slots of its bit prefix; every
        point hashes into one of its bucket's slots."""
        assert len(self._directory) == 1 << self._level
        slots_by_bucket: Dict[int, List[int]] = {}
        for slot, b in enumerate(self._directory):
            slots_by_bucket.setdefault(id(b), []).append(slot)
        by_id = {id(b): b for b in self._directory}
        total = 0
        for bid, slots in slots_by_bucket.items():
            b = by_id[bid]
            span = 1 << (self._level - b.level)
            assert len(slots) == span
            assert slots == list(range(slots[0], slots[0] + span))
            assert slots[0] % span == 0
            assert len(b.points) <= self._capacity
            total += len(b.points)
            for p in b.points:
                assert self._cell_index(p, self._level) in slots
        assert total == self._size

    # ------------------------------------------------------------------

    def _split(self, bucket: _Bucket) -> Tuple[_Bucket, _Bucket]:
        """Split one bucket on the next interleaved bit, doubling the
        directory first if the bucket is already at full resolution."""
        if bucket.level == self._level:
            self._directory = [b for b in self._directory for _ in range(2)]
            self._level += 1
        new_level = bucket.level + 1
        zero = _Bucket(new_level)
        one = _Bucket(new_level)
        for p in bucket.points:
            bit = (self._cell_index(p, new_level)) & 1
            (one if bit else zero).points.append(p)
        for slot, b in enumerate(self._directory):
            if b is bucket:
                bit = (slot >> (self._level - new_level)) & 1
                self._directory[slot] = one if bit else zero
        return zero, one

    def _try_merge(self, bucket: _Bucket) -> None:
        while bucket.level > 0:
            first = next(
                slot for slot, b in enumerate(self._directory) if b is bucket
            )
            span = 1 << (self._level - bucket.level)
            buddy_first = ((first // span) ^ 1) * span
            buddy = self._directory[buddy_first]
            if buddy.level != bucket.level:
                return
            if len(bucket.points) + len(buddy.points) > self._capacity:
                return
            merged = _Bucket(bucket.level - 1)
            merged.points = bucket.points + buddy.points
            for slot, b in enumerate(self._directory):
                if b is bucket or b is buddy:
                    self._directory[slot] = merged
            bucket = merged
