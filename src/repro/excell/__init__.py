"""EXCELL (Tamminen 1981) — comparator substrate."""

from .excell import Excell

__all__ = ["Excell"]
