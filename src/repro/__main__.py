"""Command-line interface: regenerate the paper's tables and figures.

Usage::

    python -m repro table1 [--trials 10] [--seed 1987]
    python -m repro table2 | table3 | table4 | table5
    python -m repro figure1 | figure2 | figure3
    python -m repro all
    python -m repro model --capacity 4 [--dim 2]
    python -m repro bench [--smoke] [--out BENCH_10.json]
    python -m repro storage build|stat|validate PATH [...]
    python -m repro serve start|stat|top|load|stop [...]
    python -m repro query run|pm-law [...]
    python -m repro obs report|diff|export TRACE [...]
    python -m repro db init|ingest|ls|show|trend|occupancy|report|diff|gc [...]

Each table command reruns the paper's protocol and prints the table in
the paper's layout with the published values in brackets; ``model``
prints the population model's predictions for one configuration.

Execution flags (every table/figure command):

``--workers N``
    Build trial trees across N worker processes (default 1 = serial).
    Results are bit-identical to serial runs.
``--engine {object,vector}``
    Census engine for trial building.  ``object`` (default) builds
    real PR quadtrees; ``vector`` computes each trial's census with
    the Morton-code kernel (:mod:`repro.kernels`) — bit-identical
    numbers, much faster at large n.  Specs that collect leaf areas
    fall back to the object engine (the kernel has no blocks to
    measure); the run counts ``runtime.engine_fallback`` and
    ``--verbose`` notes it.
``--cache-dir DIR`` / ``--no-cache``
    Results are cached on disk (default ``$REPRO_CACHE_DIR`` or
    ``~/.cache/repro``) keyed by the full experiment spec, so a rerun
    with identical parameters rebuilds nothing.  ``--no-cache``
    disables the cache for the run.
``--verbose``
    Print a run report (workers, chunks, trees/sec, cache hits) plus
    the instrumentation span tree (where the time went: build vs.
    census vs. cache I/O vs. pool) and its counters/gauges.

``bench`` runs the pinned performance suite (build, census,
parallel-vs-serial, warm-cache, storage, object-vs-vector kernels,
batch queries, serve) and writes a machine-readable ``BENCH_10.json``
snapshot plus a ``BENCH_TRACE_10.json`` trace bundle — see
:mod:`repro.bench`.

``storage`` builds, inspects, and validates disk-backed PR quadtrees
(one bucket per page through a buffer pool) — see
:mod:`repro.storage.cli`.

``serve`` runs the durable async spatial-index server over a paged
tree (WAL + group commit, snapshot reads, drift monitoring, live
``metrics`` telemetry with a slow-op ring) and its load generator;
``serve top`` is the live metrics view — see
:mod:`repro.service.cli`.

``query`` times the batch query kernels against the object tree's
walks on identical seeded workloads (with a bit-identical parity
check) and fits the empirical partial-match exponent — see
:mod:`repro.experiments.query_cli`.

``obs`` renders, regression-diffs, and exports saved trace snapshots
(Chrome/Perfetto JSON, folded flamegraph stacks) — see
:mod:`repro.obs.cli`.

``db`` queries and maintains the run database every command records
into by default (``--no-db`` / ``REPRO_NO_DB`` opt out; ``--db`` /
``REPRO_DB`` choose the file); ``db report`` renders the history as
markdown with inline SVG charts — see :mod:`repro.rundb.cli`.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core import PopulationModel
from .experiments import (
    build_figure1_tree,
    generate_report,
    format_phasing_table,
    format_table1,
    format_table2,
    format_table3,
    render_quadtree_ascii,
    render_semilog_ascii,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
)
from .obs import Tracer
from .runtime import ENGINES, RuntimeConfig, runtime_session


def _print_table1(trials: int, seed: int) -> None:
    print(format_table1(run_table1(trials=trials, seed=seed)))


def _print_table2(trials: int, seed: int) -> None:
    print(format_table2(run_table2(trials=trials, seed=seed)))


def _print_table3(trials: int, seed: int) -> None:
    print(format_table3(run_table3(trials=trials, seed=seed)))


def _print_table4(trials: int, seed: int) -> None:
    print(
        format_phasing_table(
            run_table4(trials=trials, seed=seed),
            "Table 4 -- occupancy vs size, uniform, m=8 (paper in [])",
        )
    )


def _print_table5(trials: int, seed: int) -> None:
    print(
        format_phasing_table(
            run_table5(trials=trials, seed=seed),
            "Table 5 -- occupancy vs size, Gaussian, m=8 (paper in [])",
        )
    )


def _print_figure1(trials: int, seed: int) -> None:
    print("Figure 1 -- PR quadtree for four points:")
    print(render_quadtree_ascii(build_figure1_tree(), resolution=32))


def _print_figure2(trials: int, seed: int) -> None:
    rows = run_table4(trials=trials, seed=seed)
    print("Figure 2 -- average occupancy vs n, uniform, m=8 (semi-log):")
    print(
        render_semilog_ascii(
            [r.n_points for r in rows], [r.occupancy for r in rows]
        )
    )


def _print_figure3(trials: int, seed: int) -> None:
    rows = run_table5(trials=trials, seed=seed)
    print("Figure 3 -- average occupancy vs n, Gaussian, m=8 (semi-log):")
    print(
        render_semilog_ascii(
            [r.n_points for r in rows], [r.occupancy for r in rows]
        )
    )


def _print_report(trials: int, seed: int) -> None:
    print(generate_report(trials=trials, seed=seed))


_COMMANDS = {
    "report": _print_report,
    "table1": _print_table1,
    "table2": _print_table2,
    "table3": _print_table3,
    "table4": _print_table4,
    "table5": _print_table5,
    "figure1": _print_figure1,
    "figure2": _print_figure2,
    "figure3": _print_figure3,
}


def _print_model(capacity: int, dim: int) -> None:
    model = PopulationModel(capacity=capacity, dim=dim)
    e = model.expected_distribution()
    print(f"population model: capacity m={capacity}, {1 << dim}-way splits")
    print(f"  expected distribution e = "
          f"({', '.join(f'{v:.4f}' for v in e)})")
    print(f"  average occupancy       = {model.average_occupancy():.4f}")
    print(f"  storage utilization     = {model.storage_utilization():.1%}")
    print(f"  growth rate a           = {model.growth_rate():.4f}")
    print(f"  post-split occupancy    = {model.post_split_occupancy():.4f}")
    print(f"  P(recursive split)      = {model.recursion_probability():.2e}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate Nelson & Samet (SIGMOD 1987) tables/figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name in list(_COMMANDS) + ["all"]:
        cmd = sub.add_parser(name, help=f"regenerate {name}")
        cmd.add_argument(
            "--trials", type=int, default=10,
            help="trees per configuration (paper: 10)",
        )
        cmd.add_argument("--seed", type=int, default=1987, help="RNG seed")
        cmd.add_argument(
            "--workers", type=int, default=1,
            help="worker processes for trial building (1 = serial)",
        )
        cmd.add_argument(
            "--engine", choices=ENGINES, default="object",
            help="census engine: object trees (parity oracle) or the "
                 "vectorized Morton-code kernel (bit-identical, faster; "
                 "area-collecting specs fall back to object trees — "
                 "--verbose notes when that happens)",
        )
        cmd.add_argument(
            "--cache-dir", default=None, metavar="DIR",
            help="result cache directory "
                 "(default: $REPRO_CACHE_DIR or ~/.cache/repro)",
        )
        cmd.add_argument(
            "--no-cache", action="store_true",
            help="always rebuild; neither read nor write the result cache",
        )
        cmd.add_argument(
            "--db", default=None, metavar="PATH",
            help="run database recording the session "
                 "(default: $REPRO_DB or ~/.local/share/repro/runs.sqlite)",
        )
        cmd.add_argument(
            "--no-db", action="store_true",
            help="do not record this run into the run database "
                 "(also: REPRO_NO_DB=1)",
        )
        cmd.add_argument(
            "--verbose", action="store_true",
            help="print a run report (chunks, trees/sec, cache hits)",
        )
    model_cmd = sub.add_parser(
        "model", help="print the population model's predictions"
    )
    model_cmd.add_argument("--capacity", type=int, required=True,
                           help="node capacity m")
    model_cmd.add_argument("--dim", type=int, default=2,
                           help="space dimension (2 = quadtree)")
    sub.add_parser(
        "bench", add_help=False,
        help="run the pinned perf suite (see 'bench --help')",
    )
    sub.add_parser(
        "storage", add_help=False,
        help="disk-backed trees: build/stat/validate "
             "(see 'storage --help')",
    )
    sub.add_parser(
        "serve", add_help=False,
        help="durable spatial-index server: start/stat/top/load/stop "
             "(see 'serve --help')",
    )
    sub.add_parser(
        "query", add_help=False,
        help="batch query experiments: run/pm-law (see 'query --help')",
    )
    sub.add_parser(
        "obs", add_help=False,
        help="trace tooling: report/diff/export (see 'obs --help')",
    )
    sub.add_parser(
        "db", add_help=False,
        help="run database: init/ingest/ls/show/trend/report/diff/gc "
             "(see 'db --help')",
    )
    return parser


def runtime_config_from_args(args: argparse.Namespace) -> RuntimeConfig:
    """Lower parsed CLI flags to the engine's RuntimeConfig."""
    if args.workers < 1:
        raise SystemExit(f"--workers must be >= 1, got {args.workers}")
    from .rundb import resolve_db_path

    return RuntimeConfig(
        workers=args.workers,
        use_cache=not args.no_cache,
        cache_dir=args.cache_dir,
        verbose=args.verbose,
        engine=getattr(args, "engine", "object"),
        tracer=Tracer() if args.verbose else None,
        db_path=resolve_db_path(
            getattr(args, "db", None), no_db=getattr(args, "no_db", False)
        ),
        db_label=getattr(args, "command", None),
    )


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "bench":
        # bench owns its flags; hand the rest of the line straight over
        from .bench import main as bench_main
        return bench_main(argv[1:])
    if argv and argv[0] == "storage":
        from .storage.cli import main as storage_main
        return storage_main(argv[1:])
    if argv and argv[0] == "serve":
        from .service.cli import main as serve_main
        return serve_main(argv[1:])
    if argv and argv[0] == "query":
        from .experiments.query_cli import main as query_main
        return query_main(argv[1:])
    if argv and argv[0] == "obs":
        from .obs.cli import main as obs_main
        return obs_main(argv[1:])
    if argv and argv[0] == "db":
        from .rundb.cli import main as db_main
        return db_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.command == "model":
        _print_model(args.capacity, args.dim)
        return 0
    config = runtime_config_from_args(args)
    with runtime_session(config):
        if args.command == "all":
            for name, fn in _COMMANDS.items():
                if name == "report":  # already a digest of everything else
                    continue
                fn(args.trials, args.seed)
                print()
        else:
            _COMMANDS[args.command](args.trials, args.seed)
    if config.verbose:
        print()
        print(config.report().summary())
    return 0


if __name__ == "__main__":
    sys.exit(main())
