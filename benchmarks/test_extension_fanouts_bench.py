"""Extension: the analysis at other fanouts (bintree b=2, octree b=8).

The paper: "the same principles apply in the case of octrees and
higher dimensional data structures."  This bench solves the model and
runs the simulation protocol for the binary-fanout PR bintree and the
3-d PR octree, asserting the same agreement shape as Table 2 — theory
slightly above experiment, within the aging band.
"""

import pytest

from repro.core import PopulationModel
from repro.quadtree import PRBintree, PRQuadtree
from repro.workloads import UniformPoints

from conftest import SEED, TRIALS


def sweep(make_tree, buckets, capacities=(1, 2, 4)):
    rows = []
    for m in capacities:
        model = PopulationModel(m, buckets=buckets)
        total_nodes = 0.0
        total_items = 0.0
        for trial in range(TRIALS):
            tree = make_tree(m, SEED + 7919 * m + trial)
            census = tree.occupancy_census()
            total_nodes += census.total_nodes
            total_items += census.total_items
        experimental = total_items / total_nodes
        rows.append((m, experimental, model.average_occupancy()))
    return rows


def _print(rows, title):
    print()
    print(f"{title}:")
    print(f"{'m':>2} {'experimental':>13} {'theoretical':>12} {'% diff':>7}")
    for m, experimental, theoretical in rows:
        diff = 100 * (theoretical - experimental) / experimental
        print(f"{m:>2} {experimental:>13.3f} {theoretical:>12.3f} {diff:>6.1f}")


def test_bintree_population_model(benchmark):
    def make(m, seed):
        tree = PRBintree(capacity=m)
        tree.insert_many(UniformPoints(seed=seed).generate(1000))
        return tree

    rows = benchmark.pedantic(
        sweep, args=(make, 2), rounds=1, iterations=1
    )
    _print(rows, "PR bintree (b=2), model vs simulation")
    for _, experimental, theoretical in rows:
        assert theoretical > experimental  # aging, as in Table 2
        assert theoretical == pytest.approx(experimental, rel=0.20)


def test_octree_population_model(benchmark):
    def make(m, seed):
        tree = PRQuadtree(capacity=m, dim=3)
        tree.insert_many(UniformPoints(dim=3, seed=seed).generate(1000))
        return tree

    rows = benchmark.pedantic(
        sweep, args=(make, 8), rounds=1, iterations=1
    )
    _print(rows, "PR octree (b=8), model vs simulation")
    for _, experimental, theoretical in rows:
        assert theoretical > experimental
        # aging strengthens with dimension (block volumes spread over
        # 8x, not 4x, per level) and 1000 points give an octree only
        # ~3 generations, so the octree band is wider than the paper's
        # planar 4-13%: direction must hold, magnitude within 30%.
        assert theoretical == pytest.approx(experimental, rel=0.30)
