"""Extension: storage cost across the PM family (PM1/PM2/PM3) vs PMR.

The paper's Section II taxonomy distinguishes vertex-based (PM) and
edge-threshold (PMR) rules for line data.  This bench builds the same
random planar subdivisions under all four rules and reports leaf
counts and heights, asserting the strictness ordering PM3 <= PM2 <=
PM1 (looser rules need fewer blocks).
"""

import numpy as np
import pytest

from repro.quadtree import PM1Quadtree, PM2Quadtree, PM3Quadtree, PMRQuadtree
from repro.workloads import LatticeSubdivision

from conftest import SEED

MAPS = 5


def run_family():
    rows = []
    for seed in range(MAPS):
        segments = LatticeSubdivision(
            cells=6, seed=SEED + seed
        ).generate()
        per_map = {"edges": len(segments)}
        for name, cls in (
            ("PM1", PM1Quadtree),
            ("PM2", PM2Quadtree),
            ("PM3", PM3Quadtree),
        ):
            tree = cls(max_depth=20)
            tree.insert_many(segments)
            tree.validate()
            per_map[name] = (tree.leaf_count(), tree.height())
        pmr = PMRQuadtree(threshold=4)
        pmr.insert_many(segments)
        per_map["PMR(4)"] = (pmr.leaf_count(), pmr.height())
        rows.append(per_map)
    return rows


def test_pm_family(benchmark):
    rows = benchmark.pedantic(run_family, rounds=1, iterations=1)
    print()
    print("PM family storage on random planar subdivisions:")
    print(f"{'map':>3} {'edges':>6} {'PM1':>12} {'PM2':>12} "
          f"{'PM3':>12} {'PMR(4)':>12}")
    for i, row in enumerate(rows):
        cells = "  ".join(
            f"{row[name][0]:>5}/{row[name][1]:<2}"
            for name in ("PM1", "PM2", "PM3", "PMR(4)")
        )
        print(f"{i:>3} {row['edges']:>6}  {cells}   (leaves/height)")
    for row in rows:
        assert row["PM3"][0] <= row["PM2"][0] <= row["PM1"][0]
        assert row["PM3"][1] <= row["PM1"][1]
    mean_pm1 = float(np.mean([row["PM1"][0] for row in rows]))
    mean_pm3 = float(np.mean([row["PM3"][0] for row in rows]))
    assert mean_pm3 < mean_pm1
