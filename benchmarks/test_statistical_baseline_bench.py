"""Baseline comparison: population model vs the exact statistical model.

The paper's case for population analysis is that it matches experiment
nearly as well as the "laborious" statistical computation at a tiny
fraction of the effort.  This bench makes that trade quantitative:

- accuracy: total-variation distance of each model's distribution from
  the simulated census at n=1000, for every capacity;
- cost: wall time of solving the population fixed point vs evaluating
  the exact statistical profile (and its Poisson variant).
"""

import numpy as np
import pytest

from repro.core import PopulationModel, fagin, solve_fixed_point_iteration, transform_matrix
from repro.experiments import run_trials

from conftest import SEED, TRIALS


def accuracy_sweep():
    rows = []
    for m in (1, 2, 4, 8):
        census = np.asarray(
            run_trials(
                m, n_points=1000, trials=TRIALS, seed=SEED + 31 * m
            ).mean_proportions()
        )
        population = PopulationModel(m).expected_distribution()
        statistical = fagin.expected_distribution(1000, m)
        rows.append(
            (
                m,
                0.5 * np.abs(population - census).sum(),
                0.5 * np.abs(statistical - census).sum(),
            )
        )
    return rows


def test_accuracy_comparison(benchmark):
    rows = benchmark.pedantic(accuracy_sweep, rounds=1, iterations=1)
    print()
    print("Model accuracy vs simulation (total variation, lower=better):")
    print(f"{'m':>2} {'population model':>17} {'exact statistics':>17}")
    for m, pop_tv, stat_tv in rows:
        print(f"{m:>2} {pop_tv:>17.3f} {stat_tv:>17.3f}")
        # The exact statistical model, which accounts for n and depth
        # structure, is the tighter fit; the population model stays
        # within the paper's "close enough to be useful" band.
        assert stat_tv < 0.03
        assert pop_tv < 0.12


def test_population_solve_cost(benchmark):
    T = transform_matrix(8)
    state = benchmark(solve_fixed_point_iteration, T)
    assert state.distribution.sum() == pytest.approx(1.0)


def test_statistical_exact_cost(benchmark):
    dist = benchmark(fagin.expected_distribution, 1000, 8)
    assert dist.sum() == pytest.approx(1.0)


def test_statistical_poisson_cost(benchmark):
    dist = benchmark(fagin.expected_distribution, 1000, 8, 4, "poisson")
    assert dist.sum() == pytest.approx(1.0)
