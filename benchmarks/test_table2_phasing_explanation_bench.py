"""Closing the loop on Section IV: Table 2's cyclic discrepancy IS
phasing sampled at a fixed n.

The paper: "when the size of the data sample is fixed and the node
capacity is allowed to vary, the average occupancy will be observed at
different points along the cyclical curve ... The smooth oscillation
in the percent difference ... represents approximately such cycle."

Quantified here with no free parameters: for each m, the *analytic*
statistical model gives the phase position of n=1000 inside that m's
x4 cycle (occupancy at 1000 relative to the cycle mean).  If the paper
is right, capacities for which n=1000 sits at a cycle high (trees
fuller than typical) must show a *smaller* theory-minus-experiment gap.
The run asserts a strong negative correlation between the analytic
phase deviation and the measured percent-difference residual.
"""

import numpy as np
import pytest

from repro.core import fagin
from repro.experiments import run_table2

from conftest import SEED, TRIALS


def phase_deviation(capacity: int, n: int = 1000, samples: int = 16) -> float:
    """Occupancy at ``n`` relative to its cycle mean, analytically."""
    at_n = fagin.average_occupancy(n, capacity)
    cycle_sizes = [
        int(round(n * 4 ** (k / samples - 0.5))) for k in range(samples)
    ]
    cycle = [fagin.average_occupancy(size, capacity) for size in cycle_sizes]
    return (at_n - float(np.mean(cycle))) / float(np.mean(cycle))


def run_experiment():
    rows = run_table2(trials=TRIALS, seed=SEED)
    deviations = [phase_deviation(row.capacity) for row in rows]
    differences = [row.percent_difference for row in rows]
    return rows, deviations, differences


def test_phasing_explains_table2_cycle(benchmark):
    rows, deviations, differences = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    mean_diff = float(np.mean(differences))
    print()
    print("Phase position of n=1000 vs Table 2 discrepancy:")
    print(f"{'m':>2} {'phase dev %':>12} {'% diff':>8} {'residual':>9}")
    for row, dev, diff in zip(rows, deviations, differences):
        print(
            f"{row.capacity:>2} {100 * dev:>12.2f} {diff:>8.1f} "
            f"{diff - mean_diff:>9.1f}"
        )
    residuals = [d - mean_diff for d in differences]
    correlation = float(np.corrcoef(deviations, residuals)[0, 1])
    print(f"correlation(phase deviation, %diff residual) = {correlation:.2f}")
    # cycle highs -> fuller trees -> smaller over-prediction: strongly
    # negative correlation (measured ~ -0.77 at the paper's protocol)
    assert correlation < -0.4
