"""Ablation: the area-weighted aging correction.

DESIGN.md calls out the paper's Section IV argument that weighting
insertion probability by block area (aging) should move the model
toward the experimental distribution.  This bench runs the paper's
protocol for every capacity and asserts the calibrated correction
reduces the occupancy error at each one — the quantitative version of
the paper's qualitative claim.
"""

import pytest

from repro.core import PopulationModel, calibrated_area_model
from repro.experiments import run_trials

from conftest import SEED, TRIALS


def run_ablation():
    rows = []
    for m in (1, 2, 4, 6, 8):
        trial_set = run_trials(
            m,
            n_points=1000,
            trials=TRIALS,
            seed=SEED + m,
            collect_area=True,
        )
        experimental = trial_set.mean_occupancy()
        base = PopulationModel(m).average_occupancy()
        corrected = calibrated_area_model(
            m, trial_set.area_occupancy
        ).average_occupancy()
        rows.append((m, experimental, base, corrected))
    return rows


def test_aging_correction(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    print()
    print("Aging-correction ablation (occupancy):")
    print(f"{'m':>2} {'experiment':>11} {'uncorrected':>12} "
          f"{'area-weighted':>14} {'error shrink':>13}")
    for m, experimental, base, corrected in rows:
        base_err = abs(base - experimental)
        corr_err = abs(corrected - experimental)
        shrink = 1 - corr_err / base_err
        print(
            f"{m:>2} {experimental:>11.3f} {base:>12.3f} "
            f"{corrected:>14.3f} {shrink:>12.0%}"
        )
        # the correction moves the right way at every capacity
        assert corrected < base
        assert corr_err < base_err
