"""Extension: does the steady state survive churn?

The paper's fixed point is derived for insertion-only growth.  This
bench holds a structure at a constant size under balanced insert/delete
traffic and compares its occupancy census with (a) the population
model and (b) a fresh build of the surviving points.

- PR quadtree: exactly identical to a fresh build (set-determined
  structure), so the model's steady state describes churned indexes
  too — an extension of the paper's result to dynamic workloads.
- grid file: linear scales never retract, so long churn leaves the
  directory at least as refined as a fresh build's.
"""

import numpy as np
import pytest

from repro.core import PopulationModel
from repro.gridfile import GridFile
from repro.quadtree import PRQuadtree, bulk_load
from repro.workloads import ChurnWorkload, apply_churn

from conftest import SEED


def run_pr_churn(size=1000, steps=2000, capacity=4):
    workload = ChurnWorkload(size=size, seed=SEED)
    tree = PRQuadtree(capacity=capacity)
    apply_churn(tree, workload, churn_steps=steps)
    return tree, workload


def test_pr_quadtree_under_churn(benchmark):
    tree, workload = benchmark.pedantic(run_pr_churn, rounds=1, iterations=1)
    census = np.asarray(tree.occupancy_census().proportions())
    model = PopulationModel(4).expected_distribution()
    fresh = bulk_load(workload.live_points, capacity=4)
    fresh_census = np.asarray(fresh.occupancy_census().proportions())

    print()
    print("PR quadtree occupancy under churn (m=4, 1000 live, 2000 swaps):")
    print(f"  churned: ({', '.join(f'{v:.3f}' for v in census)})")
    print(f"  fresh:   ({', '.join(f'{v:.3f}' for v in fresh_census)})")
    print(f"  model:   ({', '.join(f'{v:.3f}' for v in model)})")

    # identical to the fresh build (set-determined structure)
    assert census == pytest.approx(fresh_census, abs=1e-12)
    # and still within the aging band of the model
    occ_idx = np.arange(5)
    assert float(census @ occ_idx) == pytest.approx(
        float(model @ occ_idx), rel=0.18
    )


def test_gridfile_under_churn(benchmark):
    def run():
        workload = ChurnWorkload(size=500, seed=SEED + 1)
        grid = GridFile(bucket_capacity=4)
        apply_churn(grid, workload, churn_steps=1500)
        fresh = GridFile(bucket_capacity=4)
        fresh.insert_many(workload.live_points)
        return grid, fresh

    grid, fresh = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        f"grid file after churn: occupancy "
        f"{grid.average_occupancy():.2f} over {grid.directory_size()} cells; "
        f"fresh build: {fresh.average_occupancy():.2f} over "
        f"{fresh.directory_size()} cells"
    )
    # history dependence: churned directory at least as refined
    assert grid.directory_size() >= fresh.directory_size()
