"""Benchmark: regenerate Table 2 (average node occupancy, m = 1..8)."""

import pytest

from repro.experiments import format_table2, run_table2

from conftest import SEED, TRIALS


def test_table2(benchmark):
    rows = benchmark.pedantic(
        run_table2,
        kwargs={"trials": TRIALS, "n_points": 1000, "seed": SEED},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table2(rows))
    for row in rows:
        # theory column reproduces the paper exactly (same equations)
        assert row.theoretical == pytest.approx(
            row.paper_theoretical, abs=0.015
        )
        # experiment lands within a few percent of the paper's trees
        assert row.experimental == pytest.approx(
            row.paper_experimental, rel=0.06
        )
        # the aging signature: theory uniformly over-predicts
        assert row.percent_difference > 0
    # the discrepancy shows the paper's smooth cyclical structure:
    # it rises then falls across the capacity sweep rather than being flat
    diffs = [row.percent_difference for row in rows]
    assert max(diffs) - min(diffs) > 2.0
