"""Benchmark: regenerate Figure 1 (the PR quadtree block diagram).

The paper's illustration: four points, blocks recursively quartered
until no block holds more than one point.
"""

from repro.experiments import build_figure1_tree, render_quadtree_ascii

from conftest import SEED, TRIALS  # noqa: F401  (uniform bench signature)


def test_figure1(benchmark):
    tree = benchmark.pedantic(
        build_figure1_tree, rounds=1, iterations=1
    )
    print()
    print("Figure 1 -- PR quadtree for four points:")
    print(render_quadtree_ascii(tree, resolution=32))
    assert len(tree) == 4
    assert tree.height() == 2
    assert tree.occupancy_census().counts == (3, 4)
