"""Benchmark: regenerate Table 3 (occupancy by node size — aging).

Paper protocol: 10 PR quadtrees of 1000 uniform points, m=1, tree
truncated at depth 9 (reproducing the paper's implementation artifact).
"""

import pytest

from repro.core import aging_gradient
from repro.experiments import format_table3, run_table3

from conftest import SEED, TRIALS


def test_table3(benchmark):
    result = benchmark.pedantic(
        run_table3,
        kwargs={
            "trials": TRIALS,
            "n_points": 1000,
            "seed": SEED,
            "capacity": 1,
            "max_depth": 9,
        },
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table3(result))
    rows = {r.depth: r for r in result.rows}

    # Aging: occupancy decreases with depth over the populated range.
    assert aging_gradient(result.rows, min_nodes=20.0) < 0

    # The well-populated depths match the paper's occupancies closely.
    paper = {depth: occ for depth, _, _, occ in result.paper_rows}
    for depth in (5, 6, 7):
        assert rows[depth].occupancy == pytest.approx(
            paper[depth], abs=0.05
        )

    # Deep nodes decay toward the model's post-split floor of 0.40.
    assert rows[7].occupancy == pytest.approx(
        result.post_split_floor, abs=0.05
    )

    # Node-count profile is the paper's: depth 6 is the most populated.
    most_populated = max(rows.values(), key=lambda r: r.nodes)
    assert most_populated.depth in (5, 6)
