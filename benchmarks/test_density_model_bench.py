"""Extension: Table 5's damping, derived analytically.

The paper demonstrates Gaussian damping by simulation; the density-
aware statistical model computes the same curve in closed form.  This
bench evaluates the analytic Gaussian occupancy series on the paper's
size grid (up to n=1448 to bound runtime), prints it next to the
paper's Table 5, and asserts the analytic late-amplitude sits well
below the uniform model's.
"""

import numpy as np
import pytest

from repro.core import (
    TruncatedGaussianDensity,
    UniformDensity,
    density_occupancy_series,
    fit_oscillation,
)
from repro.experiments import paper_data

SIZES = [64, 90, 128, 181, 256, 362, 512, 724, 1024, 1448]
EPS = 1e-6


def run_series():
    gaussian = density_occupancy_series(
        SIZES, 8, TruncatedGaussianDensity(), eps=EPS
    )
    uniform = density_occupancy_series(SIZES, 8, UniformDensity(), eps=EPS)
    return gaussian, uniform


def test_analytic_gaussian_damping(benchmark):
    gaussian, uniform = benchmark.pedantic(run_series, rounds=1, iterations=1)
    paper = {n: occ for n, _, occ in paper_data.TABLE5_GAUSSIAN}
    print()
    print("Analytic Gaussian occupancy vs paper's simulated Table 5:")
    print(f"{'n':>6} {'analytic':>9} {'paper':>7} {'uniform analytic':>17}")
    for n, g, u in zip(SIZES, gaussian, uniform):
        print(f"{n:>6} {g:>9.2f} {paper[n]:>7.2f} {u:>17.2f}")

    # the analytic curve tracks the paper's simulated series
    for n, g in zip(SIZES, gaussian):
        assert g == pytest.approx(paper[n], abs=0.45)

    # damping, in closed form: the Gaussian oscillation is much weaker
    g_fit = fit_oscillation(SIZES, gaussian)
    u_fit = fit_oscillation(SIZES, uniform)
    print(
        f"analytic amplitudes: gaussian {g_fit.amplitude:.3f}, "
        f"uniform {u_fit.amplitude:.3f}"
    )
    assert g_fit.amplitude < 0.6 * u_fit.amplitude
