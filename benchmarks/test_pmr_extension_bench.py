"""Extension: the PMR quadtree population model vs simulation.

The paper reports (Section V) that the technique carries to the PMR
quadtree for line data with even better agreement than the PR case.
This bench builds PMR trees at several thresholds, calibrates the
crossing probability from each, and compares the model's occupancy
distribution with the measured census.
"""

import numpy as np
import pytest

from repro.core import PMRPopulationModel, estimate_crossing_probability
from repro.quadtree import PMRQuadtree
from repro.workloads import RandomSegments

from conftest import SEED, TRIALS


def sweep(thresholds=(2, 4, 6), n_segments=400):
    rows = []
    for threshold in thresholds:
        occupancies = []
        probabilities = []
        for trial in range(TRIALS):
            tree = PMRQuadtree(threshold=threshold)
            tree.insert_many(
                RandomSegments(seed=SEED + 37 * threshold + trial).generate(
                    n_segments
                )
            )
            occupancies.append(tree.average_occupancy())
            probabilities.append(estimate_crossing_probability(tree))
        model = PMRPopulationModel(
            threshold, float(np.mean(probabilities))
        )
        rows.append(
            (
                threshold,
                float(np.mean(probabilities)),
                float(np.mean(occupancies)),
                model.average_occupancy(),
            )
        )
    return rows


def test_pmr_model_agreement(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("PMR population model vs simulation:")
    print(f"{'thr':>3} {'p (measured)':>13} {'occ (sim)':>10} "
          f"{'occ (model)':>12} {'% diff':>7}")
    for threshold, p, simulated, predicted in rows:
        diff = 100 * (predicted - simulated) / simulated
        print(
            f"{threshold:>3} {p:>13.3f} {simulated:>10.3f} "
            f"{predicted:>12.3f} {diff:>6.1f}"
        )
        assert predicted == pytest.approx(simulated, rel=0.20)
