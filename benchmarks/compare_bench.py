#!/usr/bin/env python
"""Compare a bench snapshot's stage wall times against a baseline.

CI runs the smoke bench, then::

    python benchmarks/compare_bench.py BENCH_10.json auto

and fails (exit 1) if any stage's ``stage_wall_s`` exceeds the
baseline's by more than ``--factor`` (default 3 — generous, because
shared CI runners are noisy; the committed full-profile baseline plus
this guard is meant to catch order-of-magnitude rot, not percent-level
drift).  Stages present on only one side are reported and skipped, so
adding or retiring a stage doesn't break older baselines.

The baseline argument accepts a literal path or ``auto``, which
resolves the committed ``BENCH_N.json`` with the **highest N** in
``--repo-root`` (default: this script's parent) — so a bench-version
bump stops requiring a lockstep CI edit.  When the run database holds
two or more bench runs, ``repro db diff`` is the richer check (span
level, median+MAD over history); this script stays as the dependency-
free file-vs-file gate.

``--require-parallel-speedup X`` additionally gates the parallel
stage's headline speedup: the pool must never again ship slower than
serial, so CI's 2-worker smoke leg passes ``1.0``.

``--require-query-speedup X`` gates the queries stage the same way:
the batch range kernel must report at least ``X`` speedup over the
object tree's walks at the stage's top size, and every size's parity
check must have passed — the kernels are only a win while they stay
bit-identical.

``--require-p99-ms OP=MS`` (repeatable; a bare number gates
``insert``) is the SLO gate over the serve stage's per-op client-side
latency percentiles (``stages.serve.latency_ms``): the op must be
present with a nonzero count and its p99 must not exceed ``MS``.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path
from typing import Dict, List, Optional


def find_latest_baseline(root: Path) -> Optional[Path]:
    """The committed ``BENCH_N.json`` with the highest N under ``root``
    (trace bundles don't match), or ``None`` when none exists."""
    best: Optional[Path] = None
    best_version = -1
    for path in root.glob("BENCH_*.json"):
        match = re.fullmatch(r"BENCH_(\d+)\.json", path.name)
        if match and int(match.group(1)) > best_version:
            best_version = int(match.group(1))
            best = path
    return best


def stage_walls(snapshot: dict) -> Dict[str, float]:
    """Map of stage name -> stage_wall_s for stages that report one."""
    walls = {}
    for name, stage in snapshot.get("stages", {}).items():
        wall = stage.get("stage_wall_s")
        if isinstance(wall, (int, float)) and wall > 0:
            walls[name] = float(wall)
    return walls


def compare(
    current: dict, baseline: dict, factor: float
) -> List[str]:
    """Regression messages, empty when every shared stage is within
    ``factor`` of the baseline."""
    cur = stage_walls(current)
    base = stage_walls(baseline)
    problems = []
    for name in sorted(set(cur) & set(base)):
        if cur[name] > base[name] * factor:
            problems.append(
                f"stage '{name}': {cur[name]:.3f}s exceeds "
                f"{factor:g}x baseline ({base[name]:.3f}s)"
            )
    return problems


def check_parallel_speedup(current: dict, minimum: float) -> List[str]:
    """Messages when the parallel stage missed ``minimum`` speedup (or
    degraded chunks mean the pool never actually ran)."""
    stage = current.get("stages", {}).get("parallel")
    if stage is None:
        return ["parallel stage missing from current snapshot"]
    problems = []
    speedup = stage.get("speedup", 0.0)
    if not isinstance(speedup, (int, float)) or speedup < minimum:
        problems.append(
            f"parallel speedup {speedup} below required {minimum:g}x "
            f"({stage.get('workers')} workers, "
            f"engine {stage.get('engine', 'object')})"
        )
    if stage.get("degraded"):
        problems.append(
            f"parallel stage degraded {stage['degraded']} chunk(s) "
            "to in-process execution — the pool did not actually run"
        )
    return problems


def check_query_speedup(current: dict, minimum: float) -> List[str]:
    """Messages when the queries stage missed ``minimum`` range
    speedup or any parity check failed."""
    stage = current.get("stages", {}).get("queries")
    if stage is None:
        return ["queries stage missing from current snapshot"]
    problems = []
    speedup = stage.get("range_speedup", 0.0)
    if not isinstance(speedup, (int, float)) or speedup < minimum:
        problems.append(
            f"batch range speedup {speedup} below required {minimum:g}x"
        )
    if not stage.get("parity"):
        problems.append(
            "query kernel parity check failed — batch answers are not "
            "bit-identical to the object tree's"
        )
    return problems


def parse_p99_specs(specs: List[str]) -> Dict[str, float]:
    """``OP=MS`` gate specs (a bare number gates ``insert``).

    Raises ``ValueError`` on an unparsable MS so argparse error
    handling stays at the caller.
    """
    out: Dict[str, float] = {}
    for spec in specs:
        op, sep, ms = spec.partition("=")
        if sep:
            out[op.strip()] = float(ms)
        else:
            out["insert"] = float(spec)
    return out


def check_p99(current: dict, specs: Dict[str, float]) -> List[str]:
    """Messages when the serve stage's per-op p99 misses its SLO."""
    stage = current.get("stages", {}).get("serve")
    if stage is None:
        return ["serve stage missing from current snapshot"]
    latencies = stage.get("latency_ms", {})
    problems = []
    for op, limit_ms in sorted(specs.items()):
        entry = latencies.get(op)
        if not isinstance(entry, dict) or not entry.get("count"):
            problems.append(
                f"serve stage has no latency record for op '{op}' "
                "(p99 gate)"
            )
            continue
        p99 = entry.get("p99", 0.0)
        if not isinstance(p99, (int, float)) or p99 > limit_ms:
            problems.append(
                f"serve op '{op}' p99 {p99:.3f}ms exceeds the "
                f"{limit_ms:g}ms gate ({entry.get('count')} ops)"
            )
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when bench stage wall times regress vs a baseline."
    )
    parser.add_argument("current", help="snapshot from this run")
    parser.add_argument(
        "baseline",
        help="committed baseline snapshot, or 'auto' to use the "
             "highest-N BENCH_N.json in --repo-root",
    )
    parser.add_argument(
        "--repo-root", default=None, metavar="DIR",
        help="where 'auto' looks for BENCH_N.json "
             "(default: this script's parent directory)",
    )
    parser.add_argument(
        "--factor", type=float, default=3.0,
        help="allowed slowdown per stage (default: %(default)s)",
    )
    parser.add_argument(
        "--require-parallel-speedup", type=float, default=None,
        metavar="X",
        help="fail unless the current snapshot's parallel stage reports "
             "speedup >= X (and zero degraded chunks)",
    )
    parser.add_argument(
        "--require-query-speedup", type=float, default=None,
        metavar="X",
        help="fail unless the current snapshot's queries stage reports "
             "range speedup >= X (and all parity checks passed)",
    )
    parser.add_argument(
        "--require-p99-ms", action="append", default=[], metavar="OP=MS",
        help="fail when the serve stage's client-side p99 for OP "
             "exceeds MS (repeatable; bare MS gates insert)",
    )
    args = parser.parse_args(argv)
    try:
        p99_specs = parse_p99_specs(args.require_p99_ms)
    except ValueError:
        parser.error(
            f"--require-p99-ms expects OP=MS or a bare number of ms, "
            f"got {args.require_p99_ms}"
        )
    if args.factor <= 0:
        parser.error(f"--factor must be > 0, got {args.factor}")
    current = json.loads(Path(args.current).read_text(encoding="utf-8"))
    baseline_path = Path(args.baseline)
    if args.baseline == "auto":
        root = Path(args.repo_root) if args.repo_root \
            else Path(__file__).resolve().parent.parent
        found = find_latest_baseline(root)
        if found is None:
            print(f"no BENCH_N.json baseline under {root}", file=sys.stderr)
            return 2
        baseline_path = found
        print(f"baseline: {baseline_path} (resolved by highest N)")
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))

    cur, base = stage_walls(current), stage_walls(baseline)
    if current.get("profile") != baseline.get("profile"):
        print(
            f"note: comparing {current.get('profile')} run against "
            f"{baseline.get('profile')} baseline — only catastrophic "
            "regressions will trip the factor"
        )
    for name in sorted(set(cur) ^ set(base)):
        side = "current" if name in cur else "baseline"
        print(f"note: stage '{name}' only in {side} snapshot; skipped")
    shared = sorted(set(cur) & set(base))
    for name in shared:
        ratio = cur[name] / base[name]
        print(
            f"stage '{name}': {cur[name]:.3f}s vs baseline "
            f"{base[name]:.3f}s ({ratio:.2f}x)"
        )
    problems = compare(current, baseline, args.factor)
    if args.require_parallel_speedup is not None:
        problems.extend(check_parallel_speedup(
            current, args.require_parallel_speedup
        ))
    if args.require_query_speedup is not None:
        problems.extend(check_query_speedup(
            current, args.require_query_speedup
        ))
    if p99_specs:
        problems.extend(check_p99(current, p99_specs))
    if problems:
        for problem in problems:
            print(f"REGRESSION: {problem}", file=sys.stderr)
        return 1
    print(f"ok: {len(shared)} shared stages within {args.factor:g}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
