"""Benchmark: regenerate Table 1 (expected distributions, m = 1..8).

Paper protocol: solve the population equations for each capacity and
build 10 PR quadtrees of 1000 uniform points, averaging the censuses.
"""

import numpy as np
import pytest

from repro.experiments import format_table1, paper_data, run_table1

from conftest import SEED, TRIALS


def test_table1(benchmark):
    rows = benchmark.pedantic(
        run_table1,
        kwargs={"trials": TRIALS, "n_points": 1000, "seed": SEED},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table1(rows))
    # Theory must match the paper's printed values to print precision.
    for row in rows:
        assert row.theory == pytest.approx(
            paper_data.TABLE1_THEORY[row.capacity], abs=0.0015
        )
    # Experiment must land near the paper's measured rows.
    for row in rows:
        paper = np.asarray(paper_data.TABLE1_EXPERIMENT[row.capacity])
        assert np.max(np.abs(np.asarray(row.experiment) - paper)) < 0.035
