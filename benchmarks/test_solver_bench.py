"""Ablation: the three fixed-point solvers — speed and agreement.

The paper used "an iterative technique which converged on the positive
solution"; the eigen formulation and Newton's method solve the same
system.  This bench times each at the paper's largest capacity and
asserts they agree to 1e-8, justifying the choice of the cheap
iteration as the default.
"""

import numpy as np
import pytest

from repro.core import (
    solve_eigen,
    solve_fixed_point_iteration,
    solve_newton,
    transform_matrix,
)

M = 8
T = transform_matrix(M)
REFERENCE = solve_eigen(T).distribution


@pytest.mark.parametrize(
    "name,solver",
    [
        ("iteration", solve_fixed_point_iteration),
        ("eigen", solve_eigen),
        ("newton", solve_newton),
    ],
)
def test_solver(benchmark, name, solver):
    state = benchmark(solver, T)
    assert np.max(np.abs(state.distribution - REFERENCE)) < 1e-8
    assert state.growth == pytest.approx(
        float(state.distribution @ T.sum(axis=1)), abs=1e-8
    )
