"""Extension: phasing in extendible hashing — Fagin's original effect.

Section IV closes by noting that the quadtree oscillation "is the same
effect predicted by Fagin et al. in their analysis of extendible
hashing, where it appears as higher terms in a Fourier series".  The
correspondence is concrete: one extendible-hashing split makes 2
children (period x2 in n) where one quadtree split makes 4 (period x4).

This bench builds extendible hash tables over uniform keys along a
doubling-resolving size grid, recovers the oscillation period from the
data, and asserts x2 — alongside the quadtree's x4 measured by the
Table 4 bench.
"""

import numpy as np
import pytest

from repro.core import dominant_period, fit_oscillation
from repro.hashing import ExtendibleHashing, uniform_float_hash

from conftest import SEED, TRIALS

#: 8 samples per doubling, n from 64 to ~4096.
SIZES = sorted({int(round(64 * 2 ** (k / 8))) for k in range(49)})
CAPACITY = 8


def run_sweep():
    occupancies = []
    rng_master = np.random.default_rng(SEED)
    seeds = rng_master.integers(0, 2**31, size=(len(SIZES), TRIALS))
    for i, n in enumerate(SIZES):
        per_trial = []
        for t in range(TRIALS):
            rng = np.random.default_rng(int(seeds[i, t]))
            table = ExtendibleHashing(
                bucket_capacity=CAPACITY, hash_func=uniform_float_hash
            )
            for key in rng.random(n):
                table.insert(float(key), None)
            per_trial.append(table.average_occupancy())
        occupancies.append(float(np.mean(per_trial)))
    return occupancies


def test_hashing_oscillates_with_period_two(benchmark):
    occupancies = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    fit = fit_oscillation(SIZES, occupancies, period_factor=2.0)
    print()
    print(
        f"extendible hashing (capacity {CAPACITY}): measured mean "
        f"occupancy {fit.mean:.2f} (m ln 2 = "
        f"{CAPACITY * np.log(2):.2f}), x2-fit amplitude {fit.amplitude:.3f}"
    )
    # Fagin's asymptotic mean utilization is ln 2; occupancy ~ m ln 2.
    assert fit.mean == pytest.approx(CAPACITY * np.log(2), rel=0.08)

    # The oscillation itself is the *small* periodic correction of
    # Fagin's Fourier expansion (amplitude < 1% of the mean), so its
    # period is asserted on the exact statistical model (b=2 cell
    # model), which is noise-free:
    from repro.core import fagin

    analytic = [
        fagin.average_occupancy(n, CAPACITY, buckets=2) for n in SIZES
    ]
    period = dominant_period(SIZES, analytic)
    analytic_fit = fit_oscillation(SIZES, analytic, period_factor=2.0)
    print(
        f"analytic (b=2 cell model): mean {analytic_fit.mean:.3f}, "
        f"amplitude {analytic_fit.amplitude:.4f}, dominant period "
        f"x{period:.2f}"
    )
    assert period == pytest.approx(2.0, rel=0.1)
    assert 0.0 < analytic_fit.amplitude < 0.01 * analytic_fit.mean
