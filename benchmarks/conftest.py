"""Shared configuration for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures at the
paper's full protocol (10 trees per configuration), prints the rows in
the paper's layout next to the published values, and asserts the
qualitative signatures (who wins, oscillation period, damping) hold.

Run with::

    pytest benchmarks/ --benchmark-only -s

The printed output is the reproduction record that EXPERIMENTS.md
summarizes.
"""

SEED = 1987
TRIALS = 10
