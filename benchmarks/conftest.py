"""Shared configuration for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures at the
paper's full protocol (10 trees per configuration), prints the rows in
the paper's layout next to the published values, and asserts the
qualitative signatures (who wins, oscillation period, damping) hold.

Run with::

    pytest benchmarks/ --benchmark-only -s

The printed output is the reproduction record that EXPERIMENTS.md
summarizes.

Every benchmark runs inside a :func:`repro.runtime.runtime_session`, so
the suite routes through the trial-execution engine:

- ``REPRO_WORKERS=N`` fans trial building over N worker processes
  (results are bit-identical to serial);
- results are cached under ``$REPRO_CACHE_DIR`` (default
  ``~/.cache/repro``), so a rerun of the suite replays censuses from
  disk instead of rebuilding thousands of trees — set
  ``REPRO_NO_CACHE=1`` to measure cold tree-building throughput.
"""

import os

import pytest

from repro.runtime import RuntimeConfig, runtime_session

SEED = 1987
TRIALS = 10


def _runtime_config() -> RuntimeConfig:
    return RuntimeConfig(
        workers=int(os.environ.get("REPRO_WORKERS", "1")),
        use_cache=os.environ.get("REPRO_NO_CACHE", "") != "1",
        cache_dir=os.environ.get("REPRO_CACHE_DIR") or None,
    )


@pytest.fixture(scope="session", autouse=True)
def repro_runtime():
    """Ambient engine config for every benchmark in the session."""
    config = _runtime_config()
    with runtime_session(config):
        yield config
    report = config.report()
    print()
    print(report.summary())
