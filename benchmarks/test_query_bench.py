"""Performance: query throughput across the structure family.

Range and nearest-neighbor queries over the same 5000-point dataset,
answered by the PR quadtree, the point quadtree, the grid file, EXCELL
and the Morton index.  All answers are cross-checked against brute
force once before timing.
"""

import pytest

from repro.excell import Excell
from repro.geometry import MortonIndex, Point, Rect
from repro.gridfile import GridFile
from repro.quadtree import PointQuadtree, PRQuadtree
from repro.workloads import UniformPoints

N = 5000
POINTS = UniformPoints(seed=202).generate(N)
WINDOW = Rect(Point(0.42, 0.31), Point(0.58, 0.47))
QUERY_POINT = Point(0.71, 0.29)
EXPECTED_RANGE = sorted(
    p.coords for p in POINTS if WINDOW.contains_point(p)
)
EXPECTED_NEAREST = min(POINTS, key=lambda p: p.distance_to(QUERY_POINT))


def _pr_tree():
    tree = PRQuadtree(capacity=8)
    tree.insert_many(POINTS)
    return tree


def _point_tree():
    tree = PointQuadtree()
    tree.insert_many(POINTS)
    return tree


def _grid():
    grid = GridFile(bucket_capacity=8)
    grid.insert_many(POINTS)
    return grid


def _excell():
    cells = Excell(bucket_capacity=8)
    cells.insert_many(POINTS)
    return cells


def _morton():
    index = MortonIndex()
    index.insert_many(POINTS)
    return index


@pytest.mark.parametrize(
    "name,factory",
    [
        ("pr_quadtree", _pr_tree),
        ("point_quadtree", _point_tree),
        ("grid_file", _grid),
        ("excell", _excell),
        ("morton_index", _morton),
    ],
)
def test_range_query(benchmark, name, factory):
    structure = factory()
    got = sorted(p.coords for p in structure.range_search(WINDOW))
    assert got == EXPECTED_RANGE
    benchmark(structure.range_search, WINDOW)


@pytest.mark.parametrize(
    "name,factory",
    [
        ("pr_quadtree", _pr_tree),
        ("point_quadtree", _point_tree),
        ("grid_file", _grid),
        ("excell", _excell),
    ],
)
def test_nearest_query(benchmark, name, factory):
    structure = factory()
    assert structure.nearest(QUERY_POINT) == [EXPECTED_NEAREST]
    benchmark(structure.nearest, QUERY_POINT)
