"""Benchmark: regenerate Table 5 and Figure 3 (phasing damps under a
Gaussian distribution).

Paper protocol: m=8, 10 trees per size, points Gaussian "two standard
deviations wide centered in the square region".  The signature: the
oscillation is present at small n but damps as node populations in
regions of different density fall out of phase.
"""

import pytest

from repro.core import fit_oscillation
from repro.experiments import (
    format_phasing_table,
    render_semilog_ascii,
    run_table4,
    run_table5,
)

from conftest import SEED, TRIALS


def test_table5_figure3(benchmark):
    rows = benchmark.pedantic(
        run_table5,
        kwargs={"trials": TRIALS, "seed": SEED, "capacity": 8},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_phasing_table(rows, "Table 5 -- occupancy vs size, Gaussian, m=8 (paper in [])"))
    sizes = [r.n_points for r in rows]
    occ = [r.occupancy for r in rows]
    print()
    print("Figure 3 -- average occupancy vs n (semi-log):")
    print(render_semilog_ascii(sizes, occ))

    # Pointwise agreement with the paper's Gaussian series.
    for row in rows:
        assert row.occupancy == pytest.approx(row.paper_occupancy, abs=0.45)

    # The damping signature: by the late half of the series the
    # Gaussian oscillation is weaker than the uniform one's.
    uniform_rows = run_table4(trials=TRIALS, seed=SEED, capacity=8)
    u_occ = [r.occupancy for r in uniform_rows]
    gaussian_late = fit_oscillation(sizes[6:], occ[6:]).amplitude
    uniform_late = fit_oscillation(sizes[6:], u_occ[6:]).amplitude
    print(
        f"\nlate-half amplitude: uniform {uniform_late:.3f}, "
        f"gaussian {gaussian_late:.3f}"
    )
    assert gaussian_late < uniform_late

    # Paper's Table 5: the late series is flat (3.6-3.7 range).
    late = occ[6:]
    assert max(late) - min(late) < 0.45
