#!/usr/bin/env python
"""Entry point for the pinned performance suite.

Equivalent to ``PYTHONPATH=src python -m repro bench`` but runnable
straight from a checkout::

    python benchmarks/run_bench.py [--smoke] [--out BENCH_2.json]

CI runs the smoke profile and uploads the snapshot as an artifact; a
full run on a quiet machine regenerates the committed baseline.
"""

import pathlib
import sys

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.bench import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
