"""Performance: build throughput across the structure family.

Loads the same 5000 uniform points into every bucketing structure (and
the PR quadtree twice: incremental vs bulk).  Not a paper table — a
harness-level sanity sweep that the substrates scale, plus the ablation
that bulk loading beats incremental insertion.
"""

import pytest

from repro.excell import Excell
from repro.gridfile import GridFile
from repro.hashing import ExtendibleHashing, uniform_float_hash
from repro.quadtree import PRQuadtree, bulk_load
from repro.workloads import UniformPoints

N = 5000
POINTS = UniformPoints(seed=101).generate(N)
CAPACITY = 4


def test_pr_quadtree_incremental(benchmark):
    def build():
        tree = PRQuadtree(capacity=CAPACITY)
        tree.insert_many(POINTS)
        return tree

    tree = benchmark(build)
    assert len(tree) == N


def test_pr_quadtree_bulk(benchmark):
    tree = benchmark(bulk_load, POINTS, CAPACITY)
    assert len(tree) == N


def test_grid_file(benchmark):
    def build():
        grid = GridFile(bucket_capacity=CAPACITY)
        grid.insert_many(POINTS)
        return grid

    grid = benchmark(build)
    assert len(grid) == N


def test_excell(benchmark):
    def build():
        cells = Excell(bucket_capacity=CAPACITY)
        cells.insert_many(POINTS)
        return cells

    cells = benchmark(build)
    assert len(cells) == N


def test_extendible_hashing(benchmark):
    def build():
        table = ExtendibleHashing(
            bucket_capacity=CAPACITY, hash_func=uniform_float_hash
        )
        for p in POINTS:
            table.insert(p.x, p)
        return table

    table = benchmark(build)
    assert len(table) == N
