"""Benchmark: regenerate Table 4 and Figure 2 (phasing, uniform data).

Paper protocol: m=8, 10 trees per sample size, sizes quadrupling every
four steps from 64 to 4096.  The signature: average occupancy
oscillates with period x4 in n and does not damp.
"""

import pytest

from repro.core import fit_oscillation, oscillation_period
from repro.core.fagin import occupancy_series
from repro.experiments import (
    format_phasing_table,
    render_semilog_ascii,
    run_table4,
)

from conftest import SEED, TRIALS


def test_table4_figure2(benchmark):
    rows = benchmark.pedantic(
        run_table4,
        kwargs={"trials": TRIALS, "seed": SEED, "capacity": 8},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_phasing_table(rows, "Table 4 -- occupancy vs size, uniform, m=8 (paper in [])"))
    sizes = [r.n_points for r in rows]
    occ = [r.occupancy for r in rows]
    print()
    print("Figure 2 -- average occupancy vs n (semi-log):")
    print(render_semilog_ascii(sizes, occ))

    # Oscillation recovered from the data has the paper's x4 period.
    assert oscillation_period(sizes, occ) == pytest.approx(4.0, rel=0.25)

    # Amplitude is substantial and the mean sits near the paper's ~3.7.
    fit = fit_oscillation(sizes, occ)
    assert fit.amplitude > 0.15
    assert fit.mean == pytest.approx(3.7, abs=0.2)

    # Pointwise agreement with the paper's published series.
    for row in rows:
        assert row.occupancy == pytest.approx(row.paper_occupancy, abs=0.45)
        assert row.nodes == pytest.approx(row.paper_nodes, rel=0.15)

    # The analytic statistical baseline (Fagin-style) oscillates in
    # phase with the simulation: maxima at powers of 4, minima between.
    analytic = occupancy_series([64, 128, 256, 512, 1024], 8)
    assert analytic[0] > analytic[1] < analytic[2] > analytic[3] < analytic[4]
