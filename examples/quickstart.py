"""Quickstart: the population model in five minutes.

Builds the paper's Figure 1 tree, solves the expected distribution for
a few node capacities, and checks the predictions against a fresh
simulation — the whole paper in one script.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import PopulationModel, PRQuadtree, UniformPoints
from repro.experiments import build_figure1_tree, render_quadtree_ascii


def main():
    # ------------------------------------------------------------------
    # 1. A PR quadtree splits blocks until no block holds more than m
    #    points.  This is the paper's Figure 1: four points, m = 1.
    # ------------------------------------------------------------------
    print("Figure 1 — PR quadtree for four points (m = 1):\n")
    print(render_quadtree_ascii(build_figure1_tree(), resolution=32))
    print()

    # ------------------------------------------------------------------
    # 2. Population analysis predicts the steady-state distribution of
    #    node occupancies without building any tree: solve e T = a e.
    # ------------------------------------------------------------------
    for m in (1, 4, 8):
        model = PopulationModel(capacity=m)
        e = model.expected_distribution()
        print(f"m={m}: expected distribution e = "
              f"({', '.join(f'{v:.3f}' for v in e)})")
        print(f"      predicted average occupancy = "
              f"{model.average_occupancy():.2f} points/node")
        print(f"      predicted nodes for 10k points = "
              f"{model.expected_nodes(10_000):,.0f}")

    # ------------------------------------------------------------------
    # 3. Check against a simulation: 10 trees of 1000 uniform points.
    # ------------------------------------------------------------------
    m = 4
    model = PopulationModel(capacity=m)
    censuses = []
    for seed in range(10):
        tree = PRQuadtree(capacity=m)
        tree.insert_many(UniformPoints(seed=seed).generate(1000))
        censuses.append(tree.occupancy_census())
    counts = np.sum([c.counts for c in censuses], axis=0)
    observed = counts / counts.sum()
    comparison = model.compare_with_census(observed)

    print(f"\nSimulation check (m={m}, 10 trees x 1000 uniform points):")
    print(f"  theory:     ({', '.join(f'{v:.3f}' for v in comparison.expected)})")
    print(f"  simulated:  ({', '.join(f'{v:.3f}' for v in comparison.observed)})")
    print(f"  occupancy gap (theory - experiment): "
          f"{comparison.percent_difference():+.1f}%  <- the paper's 'aging'")


if __name__ == "__main__":
    main()
