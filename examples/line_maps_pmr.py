"""Vector map storage with the PMR quadtree — the paper's extension.

Section V reports that population analysis adapts to the PMR quadtree
for line segments "with results which agree with experimental data even
better than in the case of the PR quadtree".  This example stores a
synthetic road network, runs the spatial queries a map service needs,
then calibrates the PMR population model and compares its prediction
with the measured occupancy distribution.

Run:  python examples/line_maps_pmr.py
"""

import numpy as np

from repro import PMRPopulationModel, PMRQuadtree, Point, RandomSegments, Rect
from repro.core import estimate_crossing_probability

THRESHOLD = 4
N_SEGMENTS = 800


def main():
    # ------------------------------------------------------------------
    # 1. Load a synthetic road network.
    # ------------------------------------------------------------------
    roads = RandomSegments(seed=3, min_length=0.02, max_length=0.15)
    tree = PMRQuadtree(threshold=THRESHOLD)
    tree.insert_many(roads.generate(N_SEGMENTS))
    print(
        f"{N_SEGMENTS} segments -> {tree.leaf_count()} leaf blocks, "
        f"height {tree.height()}, "
        f"mean occupancy {tree.average_occupancy():.2f} segments/block"
    )

    # ------------------------------------------------------------------
    # 2. Map-service queries.
    # ------------------------------------------------------------------
    here = Point(0.5, 0.5)
    nearby = tree.stabbing_query(here)
    print(f"\nsegments sharing a block with {here.coords}: {len(nearby)}")

    nearest = tree.nearest_segment(here)
    print(
        f"nearest segment: {nearest.a.coords} -> {nearest.b.coords} "
        f"(distance {nearest.distance_to_point(here):.4f})"
    )

    viewport = Rect(Point(0.3, 0.3), Point(0.7, 0.7))
    visible = tree.window_query(viewport)
    print(f"segments crossing the {viewport.lo.coords}..{viewport.hi.coords} "
          f"viewport: {len(visible)}")

    # ------------------------------------------------------------------
    # 3. Population analysis of the structure itself.
    # ------------------------------------------------------------------
    p = estimate_crossing_probability(tree)
    model = PMRPopulationModel(THRESHOLD, p)
    print(f"\nmeasured crossing probability p = {p:.3f}")
    print(f"model's predicted occupancy:  {model.average_occupancy():.2f}")
    print(f"measured occupancy:           {tree.average_occupancy():.2f}")

    cap = model.transform.shape[0] - 1
    observed = np.asarray(tree.occupancy_census(cap=cap).proportions())
    predicted = model.expected_distribution()
    print(f"\n{'occupancy':>9} {'predicted':>10} {'observed':>10}")
    for occupancy in range(min(10, cap + 1)):
        print(
            f"{occupancy:>9} {predicted[occupancy]:>10.3f} "
            f"{observed[occupancy]:>10.3f}"
        )
    over = model.fraction_over_threshold()
    print(
        f"\nleaves pending a split (> threshold): predicted {over:.1%}, "
        f"observed "
        f"{float(observed[THRESHOLD + 1:].sum()):.1%}"
    )


if __name__ == "__main__":
    main()
