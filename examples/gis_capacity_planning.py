"""GIS capacity planning — the paper's motivating application.

The authors built population analysis while sizing quadtree storage for
a geographic information system.  This example plays that role: given
an expected point load and a disk page that holds up to B point
records, choose the node capacity, predict the page count, and verify
the prediction against a simulated build — including range and
nearest-neighbor queries a GIS would serve.

Run:  python examples/gis_capacity_planning.py
"""

from repro import (
    ClusteredPoints,
    Point,
    PopulationModel,
    PRQuadtree,
    Rect,
    UniformPoints,
)


def plan_storage(n_points: int, capacities=(1, 2, 4, 8, 16)) -> None:
    """Print predicted storage for each candidate node capacity."""
    print(f"Storage plan for {n_points:,} points:")
    print(f"{'m':>4} {'avg occupancy':>14} {'predicted pages':>16} "
          f"{'slot utilization':>17}")
    for m in capacities:
        model = PopulationModel(capacity=m)
        pages = model.expected_nodes(n_points)
        print(
            f"{m:>4} {model.average_occupancy():>14.2f} "
            f"{pages:>16,.0f} {model.storage_utilization():>16.1%}"
        )
    print()


def main():
    n_points = 20_000

    # ------------------------------------------------------------------
    # 1. Use the model to choose a capacity before touching any data.
    # ------------------------------------------------------------------
    plan_storage(n_points)

    # A page holding 8 records is the sweet spot here; predict its cost.
    m = 8
    model = PopulationModel(capacity=m)
    predicted_pages = model.expected_nodes(n_points)

    # ------------------------------------------------------------------
    # 2. Build the index and compare.
    # ------------------------------------------------------------------
    tree = PRQuadtree(capacity=m)
    tree.insert_many(UniformPoints(seed=11).generate(n_points))
    actual_pages = tree.leaf_count()
    print(f"m={m}: predicted {predicted_pages:,.0f} pages, "
          f"built {actual_pages:,} "
          f"({100 * (actual_pages / predicted_pages - 1):+.1f}% vs model; "
          "the positive bias is the paper's aging effect)")

    # ------------------------------------------------------------------
    # 3. Serve some queries.
    # ------------------------------------------------------------------
    window = Rect(Point(0.40, 0.40), Point(0.45, 0.45))
    in_window = tree.range_search(window)
    print(f"\nwindow query {window.lo.coords}..{window.hi.coords}: "
          f"{len(in_window)} points "
          f"(expected ~{n_points * window.volume:.0f} under uniformity)")

    station = Point(0.5, 0.5)
    nearest = tree.nearest(station, k=5)
    print(f"5 nearest to {station.coords}:")
    for p in nearest:
        print(f"  {p.coords}  at distance {p.distance_to(station):.4f}")

    # ------------------------------------------------------------------
    # 4. Clustered (city-like) data: the model's uniform-data numbers
    #    degrade gracefully — occupancy drops, pages rise.
    # ------------------------------------------------------------------
    clustered_tree = PRQuadtree(capacity=m)
    clustered_tree.insert_many(
        ClusteredPoints(seed=12, n_clusters=12).generate(n_points)
    )
    print(
        f"\nclustered data: {clustered_tree.leaf_count():,} pages, "
        f"occupancy {clustered_tree.occupancy_census().average_occupancy():.2f}"
        f" (uniform model said {model.average_occupancy():.2f} — plan "
        "conservatively for skew)"
    )


if __name__ == "__main__":
    main()
