"""Phasing explorer — watching the occupancy oscillation live.

Reproduces the paper's Section IV experiment interactively: sweeps tree
sizes along the logarithmic grid for several data distributions, plots
the occupancy series in ASCII, fits the oscillation, and overlays the
exact statistical baseline (the Fagin-style computation the paper
contrasts against).

Run:  python examples/phasing_explorer.py
"""

from repro import GaussianPoints, ClusteredPoints, logarithmic_sample_sizes
from repro.core import fagin, fit_oscillation, oscillation_period
from repro.experiments import occupancy_vs_size, render_semilog_ascii

CAPACITY = 8
TRIALS = 8


def explore(label, factory):
    sizes = logarithmic_sample_sizes(64, 4096)
    sweep = occupancy_vs_size(
        CAPACITY, sizes, trials=TRIALS, seed=99, generator_factory=factory
    )
    occ = [p.mean_occupancy for p in sweep]
    fit = fit_oscillation(sizes, occ)
    period = oscillation_period(sizes, occ)
    print(f"--- {label} ---")
    print(render_semilog_ascii(sizes, occ, y_range=(3.0, 4.6)))
    print(
        f"mean occupancy {fit.mean:.2f}, oscillation amplitude "
        f"{fit.amplitude:.2f}, best-fit period x{period:.1f} in n\n"
    )
    return fit


def main():
    # Uniform: the paper's Figure 2 — full-strength oscillation.
    uniform_fit = explore("uniform", None)

    # Gaussian: Figure 3 — damps as regions desynchronize.
    gaussian_fit = explore(
        "gaussian (paper's Table 5)",
        lambda seed: GaussianPoints(seed=seed),
    )

    # Clustered: far from uniform — phasing all but disappears.
    clustered_fit = explore(
        "clustered (12 tight clusters)",
        lambda seed: ClusteredPoints(seed=seed, n_clusters=12),
    )

    print("amplitude comparison:")
    print(f"  uniform   {uniform_fit.amplitude:.3f}   (never damps)")
    print(f"  gaussian  {gaussian_fit.amplitude:.3f}")
    print(f"  clustered {clustered_fit.amplitude:.3f}")

    # The analytic baseline: no simulation at all, same oscillation.
    sizes = logarithmic_sample_sizes(64, 4096)
    analytic = fagin.occupancy_series(sizes, CAPACITY)
    print("\nexact statistical model (no trees built):")
    print(render_semilog_ascii(sizes, analytic, y_range=(3.0, 4.6)))
    fit = fit_oscillation(sizes, analytic)
    print(
        f"analytic amplitude {fit.amplitude:.2f} around mean {fit.mean:.2f} "
        "- the statistical limit the paper says does not exist"
    )


if __name__ == "__main__":
    main()
