"""Occupancy shootout across the hierarchical-structure family.

The paper situates the PR quadtree among extendible hashing (Fagin),
the grid file (Nievergelt) and EXCELL (Tamminen) — all bucketing
schemes whose performance is a question of *occupancy distribution*.
This example loads the same point sets into all four structures and
compares their censuses against the population model's quadtree
prediction.

Run:  python examples/structure_shootout.py
"""

from repro import (
    Excell,
    ExtendibleHashing,
    GaussianPoints,
    GridFile,
    PopulationModel,
    PRQuadtree,
    UniformPoints,
)
from repro.hashing import uniform_float_hash

CAPACITY = 4
N_POINTS = 4000


def census_line(name, census):
    proportions = ", ".join(f"{p:.3f}" for p in census.proportions())
    return (
        f"{name:<20} buckets={census.total_nodes:>5}  "
        f"occ={census.average_occupancy():.2f}  "
        f"util={census.storage_utilization():.1%}  e=({proportions})"
    )


def run_workload(label, points):
    print(f"--- {label} ({N_POINTS} points, bucket capacity {CAPACITY}) ---")

    tree = PRQuadtree(capacity=CAPACITY)
    tree.insert_many(points)
    print(census_line("PR quadtree", tree.occupancy_census()))

    grid = GridFile(bucket_capacity=CAPACITY)
    grid.insert_many(points)
    print(census_line("grid file", grid.occupancy_census()))

    cells = Excell(bucket_capacity=CAPACITY)
    cells.insert_many(points)
    print(census_line("EXCELL", cells.occupancy_census()))

    # Hash the x-coordinate through the uniform mixer: extendible
    # hashing sees the same key population one-dimensionally.
    table = ExtendibleHashing(
        bucket_capacity=CAPACITY, hash_func=uniform_float_hash
    )
    for p in points:
        table.insert(p.x, p)
    print(census_line("extendible hashing", table.occupancy_census()))
    print()


def main():
    model = PopulationModel(capacity=CAPACITY)
    predicted = ", ".join(f"{v:.3f}" for v in model.expected_distribution())
    print(
        f"population model (quadtree, m={CAPACITY}): "
        f"occ={model.average_occupancy():.2f}  e=({predicted})\n"
    )

    run_workload("uniform", UniformPoints(seed=1).generate(N_POINTS))
    run_workload("gaussian", GaussianPoints(seed=2).generate(N_POINTS))

    print(
        "Reading the numbers: the quadtree census tracks the model; the\n"
        "1-bit-split structures (hashing, EXCELL) run fuller (ln 2 ~ 69%\n"
        "utilization) because a split spreads a bucket over 2 children,\n"
        "not 4; the grid file sits between, splitting one axis at a time\n"
        "but sharing buckets across cells."
    )


if __name__ == "__main__":
    main()
