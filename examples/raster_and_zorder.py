"""Raster maps and z-order — the rest of the quadtree family tree.

Two short studies rounding out the taxonomy the paper's Section II
sketches:

1. **Region quadtree** (Klinger 1971): a synthetic land/water raster,
   its block decomposition and census, and map algebra (union /
   intersection) computed directly on the trees.
2. **Morton codes** (Orenstein 1982): the PR quadtree *is* a trie over
   bit-interleaved coordinates — demonstrated by checking that quadrant
   paths equal code prefixes, then racing a sorted Morton index against
   the tree on range queries.

Run:  python examples/raster_and_zorder.py
"""

import time

import numpy as np

from repro import Point, PRQuadtree, Rect, UniformPoints
from repro.geometry import MortonIndex, morton_key, prefix_at_depth
from repro.quadtree import RegionQuadtree


def synthetic_island(size=32, seed=5):
    """A blobby island raster: land where a few Gaussian bumps sum high."""
    rng = np.random.default_rng(seed)
    ys, xs = np.mgrid[0:size, 0:size] / size
    field = np.zeros((size, size))
    for _ in range(4):
        cx, cy = rng.random(2) * 0.6 + 0.2
        field += np.exp(-(((xs - cx) ** 2 + (ys - cy) ** 2) / 0.02))
    return field > 0.8


def region_quadtree_study():
    print("=== region quadtree: land/water raster ===")
    land = RegionQuadtree.from_array(synthetic_island(seed=5))
    print(land.render())
    print(f"\n{land.black_area()} land pixels in {land.leaf_count()} blocks")
    print("black blocks by side length:", dict(sorted(
        land.block_size_census().items(), reverse=True)))

    from repro.quadtree import component_areas, component_count

    islands = component_count(land)
    print(
        f"component labeling (the [Same84c] operation): {islands} "
        f"island(s), areas {component_areas(land)}"
    )

    flood = RegionQuadtree.from_array(synthetic_island(seed=9))
    flooded_land = land.intersection(flood.complement())
    print(
        f"\nafter flooding with a second mask: "
        f"{flooded_land.black_area()} land pixels remain "
        f"({land.black_area() - flooded_land.black_area()} submerged), "
        f"now {component_count(flooded_land)} component(s)\n"
    )


def morton_study():
    print("=== z-order: the PR quadtree as a trie ===")
    pts = UniformPoints(seed=6).generate(5000)

    # the equivalence: same depth-k block <=> same k-quadrant prefix
    a, b = pts[0], pts[1]
    bits = 16
    code_a, code_b = morton_key(a, bits=bits), morton_key(b, bits=bits)
    depth = 0
    while prefix_at_depth(code_a, depth + 1, 2, bits) == prefix_at_depth(
        code_b, depth + 1, 2, bits
    ):
        depth += 1
    print(
        f"points {a.coords} and {b.coords} share Morton prefix to depth "
        f"{depth} -> a capacity-1 PR quadtree separates them at depth "
        f"{depth + 1}"
    )

    tree = PRQuadtree(capacity=8)
    tree.insert_many(pts)
    index = MortonIndex(bits=bits)
    index.insert_many(pts)

    query = Rect(Point(0.41, 0.37), Point(0.52, 0.49))
    t0 = time.perf_counter()
    from_tree = sorted(p.coords for p in tree.range_search(query))
    tree_ms = (time.perf_counter() - t0) * 1000
    t0 = time.perf_counter()
    from_index = sorted(p.coords for p in index.range_search(query))
    index_ms = (time.perf_counter() - t0) * 1000
    assert from_tree == from_index
    print(
        f"range query agreement: {len(from_tree)} points; "
        f"PR quadtree {tree_ms:.2f} ms, Morton index {index_ms:.2f} ms"
    )


def main():
    region_quadtree_study()
    morton_study()


if __name__ == "__main__":
    main()
