"""Index tuning end-to-end: plan, warm up, verify, churn.

Uses the planner and dynamics layers to answer the lifecycle questions
a deployment asks of a quadtree index:

1. which node capacity fits the page budget?
2. how many insertions before the steady-state numbers hold?
3. do the numbers hold?  (build and measure)
4. do they *keep* holding under update traffic?  (churn and re-measure)

Run:  python examples/index_tuning.py
"""

from repro import PRQuadtree, UniformPoints
from repro.core import PopulationDynamics, StoragePlanner
from repro.workloads import ChurnWorkload, apply_churn


def main():
    n_points = 50_000
    page_budget = 18_000
    planner = StoragePlanner()

    # ------------------------------------------------------------------
    # 1. plan: smallest capacity that fits the page budget
    # ------------------------------------------------------------------
    capacity = planner.capacity_for_page_budget(n_points, page_budget)
    model = planner.model(capacity)
    print(
        f"{n_points:,} points into <= {page_budget:,} pages: "
        f"capacity m={capacity} "
        f"(predicted {planner.pages_needed(n_points, capacity):,.0f} pages, "
        f"utilization {planner.utilization(capacity):.1%})"
    )

    # ------------------------------------------------------------------
    # 2. warm-up horizon from the mean-field dynamics
    # ------------------------------------------------------------------
    warmup = planner.warmup_insertions(capacity, tolerance=0.02)
    rate = PopulationDynamics(model.transform).convergence_rate()
    print(
        f"steady state within 2% after ~{warmup} insertions "
        f"(per-generation contraction {rate:.2f})"
    )

    # ------------------------------------------------------------------
    # 3. build and verify
    # ------------------------------------------------------------------
    tree = PRQuadtree(capacity=capacity)
    tree.insert_many(UniformPoints(seed=42).generate(n_points))
    built_pages = tree.leaf_count()
    print(
        f"built: {built_pages:,} pages "
        f"({100 * (built_pages / planner.pages_needed(n_points, capacity) - 1):+.1f}% "
        "vs plan; the excess is aging)"
    )
    assert built_pages <= page_budget, "plan violated!"

    # ------------------------------------------------------------------
    # 4. churn: 20% of the index turned over
    # ------------------------------------------------------------------
    workload = ChurnWorkload(size=5_000, seed=43)
    churn_tree = PRQuadtree(capacity=capacity)
    apply_churn(churn_tree, workload, churn_steps=1_000)
    before = churn_tree.occupancy_census().average_occupancy()
    apply_churn(churn_tree, workload, churn_steps=4_000)
    after = churn_tree.occupancy_census().average_occupancy()
    print(
        f"churn check (5k live, 5k total swaps): occupancy "
        f"{before:.2f} -> {after:.2f} (steady under churn; PR structure "
        "depends only on the live set)"
    )


if __name__ == "__main__":
    main()
